"""Declarative simulation scenarios and the named presets.

A :class:`Scenario` is pure data: the seed, an arrival-regime spec, a
:class:`~repro.sim.population.PopulationSpec`, and a task template.
:func:`make_arrival_process` and :func:`make_task_factory` turn the
specs into live objects; :func:`repro.sim.runner.run_scenario` wires
everything into the session engine.

Arrival specs are tagged tuples::

    ("poisson",  rate, tasks)
    ("burst",    burst_size, gap, bursts)
    ("diurnal",  base_rate, peak_rate, day_length, tasks)
    ("closed-loop", initial, republish_delay, max_tasks)

Presets in :data:`SCENARIO_PRESETS` cover the regimes the benchmark
compares; ``scaled()`` shrinks any scenario for smoke lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import ProtocolError
from repro.sim.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    ClosedLoopArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    TaskFactory,
    TaskTemplate,
)
from repro.sim.population import PopulationSpec


@dataclass(frozen=True)
class Scenario:
    """One reproducible marketplace workload, fully described by data."""

    name: str
    arrivals: Tuple  # tagged spec, see module docstring
    seed: int = 0
    population: PopulationSpec = field(default_factory=PopulationSpec)
    task: TaskTemplate = field(default_factory=TaskTemplate)
    evaluation: str = "batched"
    #: Requesters reclaim unfilled tasks after this many periods.
    cancel_after: Optional[int] = 12
    #: Compact the event log every N blocks (0 = never).  Safe because
    #: every simulation consumer is cursor-based.
    prune_every: int = 64
    #: Hard stop for the runner loop (quiescence normally ends it).
    max_blocks: int = 4096
    #: Pool sizes for :mod:`repro.parallel`.  ``None`` keeps the legacy
    #: serial path (no pools at all); ``0`` dispatches through a pool
    #: that runs jobs inline — the reference point the determinism tests
    #: pin ``1``/``2``/``4`` against, byte-for-byte.
    prover_procs: Optional[int] = None
    verifier_procs: Optional[int] = None

    def expected_tasks(self) -> int:
        """How many tasks the arrival spec will issue in total."""
        tag = self.arrivals[0]
        if tag == "poisson":
            return int(self.arrivals[2])
        if tag == "burst":
            return int(self.arrivals[1]) * int(self.arrivals[3])
        if tag == "diurnal":
            return int(self.arrivals[4])
        if tag == "closed-loop":
            return int(self.arrivals[3])
        raise ProtocolError("unknown arrival regime: %r" % (tag,))


def make_task_factory(scenario: Scenario) -> TaskFactory:
    return scenario.task.build


def make_arrival_process(scenario: Scenario) -> ArrivalProcess:
    """Instantiate the scenario's arrival regime (unstaffed: workers
    come from the population)."""
    spec = scenario.arrivals
    common = dict(
        seed=scenario.seed,
        task_factory=make_task_factory(scenario),
        evaluation=scenario.evaluation,
        cancel_after=scenario.cancel_after,
    )
    tag = spec[0]
    if tag == "poisson":
        return PoissonArrivals(rate=spec[1], tasks=spec[2], **common)
    if tag == "burst":
        return BurstArrivals(
            burst_size=spec[1], gap=spec[2], bursts=spec[3], **common
        )
    if tag == "diurnal":
        return DiurnalArrivals(
            base_rate=spec[1],
            peak_rate=spec[2],
            day_length=spec[3],
            tasks=spec[4],
            **common,
        )
    if tag == "closed-loop":
        return ClosedLoopArrivals(
            initial=spec[1], republish_delay=spec[2], max_tasks=spec[3], **common
        )
    raise ProtocolError("unknown arrival regime: %r" % (tag,))


#: The named regimes the benchmark (and the CLI) compare.
SCENARIO_PRESETS: Dict[str, Scenario] = {
    "poisson": Scenario(
        name="poisson",
        arrivals=("poisson", 0.6, 24),
        population=PopulationSpec(size=12),
    ),
    "burst": Scenario(
        name="burst",
        arrivals=("burst", 6, 12, 4),
        population=PopulationSpec(size=16),
    ),
    "diurnal": Scenario(
        name="diurnal",
        arrivals=("diurnal", 0.1, 1.2, 16, 24),
        population=PopulationSpec(size=12),
    ),
    "closed-loop": Scenario(
        name="closed-loop",
        arrivals=("closed-loop", 4, 2, 20),
        population=PopulationSpec(size=10),
    ),
    "adversarial": Scenario(
        name="adversarial",
        arrivals=("poisson", 0.5, 16),
        population=PopulationSpec(
            size=12, straggler_fraction=0.2, dropout_fraction=0.15
        ),
    ),
}


def preset(name: str, seed: Optional[int] = None, tasks: Optional[int] = None) -> Scenario:
    """Fetch a preset, optionally reseeded and resized."""
    try:
        scenario = SCENARIO_PRESETS[name]
    except KeyError:
        raise ProtocolError(
            "unknown scenario preset %r (have: %s)"
            % (name, ", ".join(sorted(SCENARIO_PRESETS)))
        ) from None
    if seed is not None:
        scenario = replace(scenario, seed=seed)
    if tasks is not None:
        scenario = replace(scenario, arrivals=_resize(scenario.arrivals, tasks))
    return scenario


def _resize(spec: Tuple, tasks: int) -> Tuple:
    """The same regime issuing ``tasks`` tasks in total."""
    tag = spec[0]
    if tag == "poisson":
        return (tag, spec[1], tasks)
    if tag == "burst":
        bursts = max(1, tasks // spec[1])
        return (tag, spec[1], spec[2], bursts)
    if tag == "diurnal":
        return (tag, spec[1], spec[2], spec[3], tasks)
    if tag == "closed-loop":
        return (tag, min(spec[1], tasks), spec[2], tasks)
    raise ProtocolError("unknown arrival regime: %r" % (tag,))
