"""repro.sim — the marketplace workload simulation subsystem.

Turns the PR 2 session engine into a load generator and telemetry rig:

* :mod:`repro.sim.arrivals` — seeded arrival processes (Poisson, burst,
  diurnal, closed-loop republish) emitting lazy ``TaskArrival`` streams;
* :mod:`repro.sim.population` — stochastic worker populations that pick
  tasks by expected utility through the marketplace, with adversary
  fractions riding the existing session policies;
* :mod:`repro.sim.metrics` — an event-bus collector for throughput,
  latency, gas (fixed slots + extras), earnings, and mempool depth;
* :mod:`repro.sim.scenario` — declarative scenarios and named presets;
* :mod:`repro.sim.runner` — wires it all into the engine and returns a
  reproducible :class:`~repro.sim.runner.SimulationReport`.

Quick start::

    from repro.sim import preset, run_scenario

    report = run_scenario(preset("poisson", seed=7))
    print(report.to_json())
"""

from repro.sim.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    ClosedLoopArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    default_task_factory,
)
from repro.sim.metrics import LatencyStats, MetricsCollector
from repro.sim.population import (
    PopulationSpec,
    WorkerAgent,
    WorkerPopulation,
    sample_accuracy,
)
from repro.sim.runner import (
    InterruptedRun,
    SimulationReport,
    SimulationRun,
    resume_scenario,
    run_scenario,
)
from repro.sim.scenario import (
    SCENARIO_PRESETS,
    Scenario,
    TaskTemplate,
    make_arrival_process,
    preset,
)
from repro.sim.seeding import derive_rng, derive_seed

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstArrivals",
    "DiurnalArrivals",
    "ClosedLoopArrivals",
    "default_task_factory",
    "MetricsCollector",
    "LatencyStats",
    "WorkerPopulation",
    "WorkerAgent",
    "PopulationSpec",
    "sample_accuracy",
    "Scenario",
    "TaskTemplate",
    "SCENARIO_PRESETS",
    "preset",
    "make_arrival_process",
    "InterruptedRun",
    "SimulationReport",
    "SimulationRun",
    "resume_scenario",
    "run_scenario",
    "derive_seed",
    "derive_rng",
]
