"""The simulation runner: population + arrivals + metrics → the engine.

:func:`run_scenario` is the marketplace in a loop.  Per block:

1. pull the arrivals due now from the (possibly open-ended) arrival
   process and admit them through :meth:`Dragoon.admit` — same-step
   arrivals share one deployment block, exactly as in ``serve``;
2. let the population observe the bus and enroll idle agents into the
   open listings they rationally prefer (commits land next block);
3. sample the mempool and pump the engine one block;
4. feed settlements back (closed-loop republish) and, on long runs,
   prune the event log — every consumer here is cursor-based.

The loop ends at quiescence (arrivals exhausted, sessions terminal,
mempool drained) and packages a :class:`SimulationReport`.  The whole
run executes under :func:`repro.crypto.rng.deterministic_entropy`, so a
seeded scenario is byte-for-byte reproducible — including gas, which
depends on encryption randomness through calldata byte pricing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.session import HITSession
from repro.crypto.rng import deterministic_entropy
from repro.dragoon import Dragoon
from repro.errors import ProtocolError
from repro.sim.arrivals import ClosedLoopArrivals
from repro.sim.metrics import MetricsCollector
from repro.sim.population import WorkerPopulation
from repro.sim.scenario import Scenario, make_arrival_process


@dataclass
class SimulationReport:
    """The structured outcome of one scenario run.

    Everything here is plain data; :meth:`to_json` is canonical (sorted
    keys), so two runs of the same seeded scenario must produce the
    same bytes — the reproducibility contract the tests pin.
    """

    scenario: str
    seed: int
    blocks: int
    tasks_published: int
    tasks_settled: int
    tasks_cancelled: int
    total_transactions: int
    total_gas: int
    gas_per_settled_task: float
    gas_extras: Dict[str, int]
    blocks_per_task: float
    settled_per_block: float
    commit_to_finalize: Dict[str, object]
    publish_to_finalize: Dict[str, object]
    worker_earnings: Dict[str, int]
    peak_mempool_depth: int
    enrollments: int
    declined_enrollments: int
    dropped_steps: int
    events_pruned: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "blocks": self.blocks,
            "tasks_published": self.tasks_published,
            "tasks_settled": self.tasks_settled,
            "tasks_cancelled": self.tasks_cancelled,
            "total_transactions": self.total_transactions,
            "total_gas": self.total_gas,
            "gas_per_settled_task": round(self.gas_per_settled_task, 2),
            "gas_extras": dict(sorted(self.gas_extras.items())),
            "blocks_per_task": round(self.blocks_per_task, 4),
            "settled_per_block": round(self.settled_per_block, 4),
            "commit_to_finalize": self.commit_to_finalize,
            "publish_to_finalize": self.publish_to_finalize,
            "worker_earnings": dict(sorted(self.worker_earnings.items())),
            "peak_mempool_depth": self.peak_mempool_depth,
            "enrollments": self.enrollments,
            "declined_enrollments": self.declined_enrollments,
            "dropped_steps": self.dropped_steps,
            "events_pruned": self.events_pruned,
        }

    def to_json(self) -> str:
        """Canonical serialization (the byte-for-byte comparison form)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def check_invariants(self) -> None:
        """Raise unless the accounting closes (the CI smoke gate)."""
        if self.tasks_settled + self.tasks_cancelled != self.tasks_published:
            raise ProtocolError(
                "unsettled tasks: %d published, %d settled + %d cancelled"
                % (self.tasks_published, self.tasks_settled, self.tasks_cancelled)
            )
        if self.tasks_published == 0:
            raise ProtocolError("the scenario issued no tasks")
        if self.blocks <= 0:
            raise ProtocolError("no blocks mined")
        if self.total_gas <= 0:
            raise ProtocolError("no gas metered")
        histogram_total = sum(
            self.commit_to_finalize.get("histogram", {}).values()  # type: ignore[union-attr]
        )
        if histogram_total > self.tasks_settled:
            raise ProtocolError("latency histogram exceeds settled tasks")
        if any(earning < 0 for earning in self.worker_earnings.values()):
            raise ProtocolError("negative worker earnings")


@dataclass
class SimulationRun:
    """The report plus the live objects, for tests that want to poke."""

    report: SimulationReport
    dragoon: Dragoon
    population: WorkerPopulation
    collector: MetricsCollector
    sessions: Dict[str, HITSession] = field(default_factory=dict)


def run_scenario(scenario: Scenario, keep_objects: bool = False):
    """Run one scenario to quiescence; return its :class:`SimulationReport`
    (or a :class:`SimulationRun` when ``keep_objects``)."""
    with deterministic_entropy(scenario.seed):
        run = _run(scenario)
    return run if keep_objects else run.report


def _run(scenario: Scenario) -> SimulationRun:
    dragoon = Dragoon()
    engine = dragoon.engine
    process = make_arrival_process(scenario)
    population = WorkerPopulation(
        scenario.population, dragoon.chain, dragoon.swarm, seed=scenario.seed
    )
    collector = MetricsCollector(dragoon.chain)
    sessions: Dict[str, HITSession] = {}
    settled_reported = 0
    events_pruned = 0

    step = 0
    while True:
        due = process.due(step)
        if due:
            for session in dragoon.admit(due):
                sessions[session.contract_name] = session
                population.register_task(
                    session.contract_name,
                    dragoon.tasks[session.contract_name].requester.task,
                )
        # The population sees everything up to and including this
        # step's deployments, then fills slots; commits mine next block.
        population.observe()
        population.enroll(sessions)
        collector.before_step()
        block = engine.step()
        collector.on_block(block)
        step += 1

        # Closed-loop feedback: every newly settled task republishes.
        if isinstance(process, ClosedLoopArrivals):
            newly_settled = (
                collector.tasks_settled
                + collector.tasks_cancelled
                - settled_reported
            )
            for _ in range(newly_settled):
                process.notify_settled(step)
            settled_reported += newly_settled

        if scenario.prune_every and step % scenario.prune_every == 0:
            events_pruned += dragoon.chain.event_log.prune()

        if (
            process.exhausted
            and engine.all_done
            and not len(dragoon.chain.mempool)
        ):
            # One last drain so terminal events reach every consumer.
            population.observe()
            break
        if step >= scenario.max_blocks:
            raise ProtocolError(
                "scenario %r still busy after %d blocks: %s"
                % (scenario.name, step, engine.describe_stuck())
            )

    dropped = sum(len(session.dropped) for session in sessions.values())
    report = SimulationReport(
        scenario=scenario.name,
        seed=scenario.seed,
        blocks=dragoon.chain.height,
        tasks_published=collector.tasks_published,
        tasks_settled=collector.tasks_settled,
        tasks_cancelled=collector.tasks_cancelled,
        total_transactions=collector.total_transactions,
        total_gas=collector.total_gas,
        gas_per_settled_task=collector.gas_per_settled_task(),
        gas_extras=collector.extras_total(),
        blocks_per_task=(
            dragoon.chain.height / collector.tasks_published
            if collector.tasks_published
            else 0.0
        ),
        settled_per_block=(
            collector.tasks_settled / dragoon.chain.height
            if dragoon.chain.height
            else 0.0
        ),
        commit_to_finalize=collector.commit_to_finalize.to_dict(),
        publish_to_finalize=collector.publish_to_finalize.to_dict(),
        worker_earnings=population.earnings(),
        peak_mempool_depth=collector.peak_mempool_depth,
        enrollments=population.enrollments,
        declined_enrollments=population.declined,
        dropped_steps=dropped,
        events_pruned=events_pruned,
    )
    return SimulationRun(
        report=report,
        dragoon=dragoon,
        population=population,
        collector=collector,
        sessions=sessions,
    )
