"""The simulation runner: population + arrivals + metrics → the engine.

:func:`run_scenario` is the marketplace in a loop.  Per block:

1. pull the arrivals due now from the (possibly open-ended) arrival
   process and admit them through :meth:`Dragoon.admit` — same-step
   arrivals share one deployment block, exactly as in ``serve``;
2. let the population observe the bus and enroll idle agents into the
   open listings they rationally prefer (commits land next block);
3. sample the mempool and pump the engine one block;
4. feed settlements back (closed-loop republish) and, on long runs,
   prune the event log — every consumer here is cursor-based.

The loop ends at quiescence (arrivals exhausted, sessions terminal,
mempool drained) and packages a :class:`SimulationReport`.  The whole
run executes under :func:`repro.crypto.rng.deterministic_entropy` *and*
:func:`repro.chain.transactions.scoped_tx_nonces`, so a seeded scenario
is byte-for-byte reproducible — report, gas, and final ``state_root``
alike.

Checkpoint/resume (PR 4)
------------------------

Long scenarios can persist through a :class:`~repro.store.NodeStore`:
pass ``store=`` (the chain journals every block to its WAL) and
``checkpoint_every=N`` (every N engine steps the runner snapshots the
canonical chain state and pickles the live continuation — sessions,
population, arrival process, collector — next to it).  A killed run
(``interrupt_after=`` simulates the kill deterministically) resumes
with :func:`resume_scenario`, which restores the continuation, verifies
it against the snapshot ``state_root``, re-enters the loop with the
entropy stream and nonce counter exactly where they stopped, and
produces a report byte-for-byte identical to the uninterrupted run's —
the round-trip property ``tests/test_persistence.py`` pins for every
preset scenario.
"""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.chain.transactions import scoped_tx_nonces
from repro.core.session import HITSession
from repro.crypto.rng import deterministic_entropy
from repro.dragoon import Dragoon
from repro.errors import ProtocolError
from repro.parallel import ProverPool, VerifierPool
from repro.sim.arrivals import ArrivalProcess, ClosedLoopArrivals
from repro.sim.metrics import MetricsCollector
from repro.sim.population import WorkerPopulation
from repro.sim.scenario import Scenario, make_arrival_process


@dataclass
class SimulationReport:
    """The structured outcome of one scenario run.

    Everything here is plain data; :meth:`to_json` is canonical (sorted
    keys), so two runs of the same seeded scenario must produce the
    same bytes — the reproducibility contract the tests pin.
    """

    scenario: str
    seed: int
    blocks: int
    tasks_published: int
    tasks_settled: int
    tasks_cancelled: int
    total_transactions: int
    total_gas: int
    gas_per_settled_task: float
    gas_extras: Dict[str, int]
    blocks_per_task: float
    settled_per_block: float
    commit_to_finalize: Dict[str, object]
    publish_to_finalize: Dict[str, object]
    worker_earnings: Dict[str, int]
    peak_mempool_depth: int
    enrollments: int
    declined_enrollments: int
    dropped_steps: int
    events_pruned: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "blocks": self.blocks,
            "tasks_published": self.tasks_published,
            "tasks_settled": self.tasks_settled,
            "tasks_cancelled": self.tasks_cancelled,
            "total_transactions": self.total_transactions,
            "total_gas": self.total_gas,
            "gas_per_settled_task": round(self.gas_per_settled_task, 2),
            "gas_extras": dict(sorted(self.gas_extras.items())),
            "blocks_per_task": round(self.blocks_per_task, 4),
            "settled_per_block": round(self.settled_per_block, 4),
            "commit_to_finalize": self.commit_to_finalize,
            "publish_to_finalize": self.publish_to_finalize,
            "worker_earnings": dict(sorted(self.worker_earnings.items())),
            "peak_mempool_depth": self.peak_mempool_depth,
            "enrollments": self.enrollments,
            "declined_enrollments": self.declined_enrollments,
            "dropped_steps": self.dropped_steps,
            "events_pruned": self.events_pruned,
        }

    def to_json(self) -> str:
        """Canonical serialization (the byte-for-byte comparison form)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def check_invariants(self) -> None:
        """Raise unless the accounting closes (the CI smoke gate)."""
        if self.tasks_settled + self.tasks_cancelled != self.tasks_published:
            raise ProtocolError(
                "unsettled tasks: %d published, %d settled + %d cancelled"
                % (self.tasks_published, self.tasks_settled, self.tasks_cancelled)
            )
        if self.tasks_published == 0:
            raise ProtocolError("the scenario issued no tasks")
        if self.blocks <= 0:
            raise ProtocolError("no blocks mined")
        if self.total_gas <= 0:
            raise ProtocolError("no gas metered")
        histogram_total = sum(
            self.commit_to_finalize.get("histogram", {}).values()  # type: ignore[union-attr]
        )
        if histogram_total > self.tasks_settled:
            raise ProtocolError("latency histogram exceeds settled tasks")
        if any(earning < 0 for earning in self.worker_earnings.values()):
            raise ProtocolError("negative worker earnings")


@dataclass
class SimulationRun:
    """The report plus the live objects, for tests that want to poke."""

    report: SimulationReport
    dragoon: Dragoon
    population: WorkerPopulation
    collector: MetricsCollector
    sessions: Dict[str, HITSession] = field(default_factory=dict)


@dataclass
class InterruptedRun:
    """A run stopped at a checkpoint (the simulated kill).

    Hand the state directory to :func:`resume_scenario` to continue it;
    the resumed run's report is byte-for-byte what the uninterrupted
    run would have produced.
    """

    state_dir: str
    step: int
    scenario: str
    seed: int


@dataclass
class _Continuation:
    """Everything the loop needs to pick up mid-stream (pickled whole).

    The object graph is shared: sessions, population, collector, and
    the engine all reference ``dragoon.chain`` (and its event log and
    cursors), and pickling preserves that sharing — a restored
    continuation is the same machine, paused.
    """

    scenario: Scenario
    dragoon: Dragoon
    process: ArrivalProcess
    population: WorkerPopulation
    collector: MetricsCollector
    sessions: Dict[str, HITSession]
    settled_reported: int
    events_pruned: int
    step: int
    checkpoint_every: int
    #: The scenario's verification pool (``None`` = serial).  Travels
    #: with the continuation so a resumed run re-installs the same
    #: hooks; only the pool's configuration pickles (the executor is
    #: rebuilt lazily after restore).
    verifier_pool: Optional[VerifierPool] = None


def run_scenario(
    scenario: Scenario,
    keep_objects: bool = False,
    store=None,
    checkpoint_every: int = 0,
    interrupt_after: Optional[int] = None,
) -> Union[SimulationReport, SimulationRun, InterruptedRun]:
    """Run one scenario to quiescence; return its :class:`SimulationReport`
    (or a :class:`SimulationRun` when ``keep_objects``).

    With ``store`` (a :class:`~repro.store.NodeStore`) every block is
    journalled to the WAL; add ``checkpoint_every=N`` to snapshot a
    resumable continuation every N engine steps.  ``interrupt_after=M``
    stops the run at step M right after writing a checkpoint there and
    returns an :class:`InterruptedRun` — the deterministic stand-in for
    ``kill -9`` that the resume tests and the example build on.
    """
    if (checkpoint_every or interrupt_after is not None) and store is None:
        raise ProtocolError("checkpointing needs a NodeStore (pass store=...)")
    with scoped_tx_nonces(), deterministic_entropy(scenario.seed):
        prover_pool = (
            ProverPool(scenario.prover_procs)
            if scenario.prover_procs is not None
            else None
        )
        verifier_pool = (
            VerifierPool(scenario.verifier_procs)
            if scenario.verifier_procs is not None
            else None
        )
        dragoon = Dragoon(prover_pool=prover_pool)
        if store is not None:
            dragoon.attach_store(store)
        continuation = _Continuation(
            scenario=scenario,
            dragoon=dragoon,
            process=make_arrival_process(scenario),
            population=WorkerPopulation(
                scenario.population, dragoon.chain, dragoon.swarm,
                seed=scenario.seed,
            ),
            collector=MetricsCollector(dragoon.chain),
            sessions={},
            settled_reported=0,
            events_pruned=0,
            step=0,
            checkpoint_every=checkpoint_every,
            verifier_pool=verifier_pool,
        )
        run = _loop(continuation, store, interrupt_after)
    if isinstance(run, InterruptedRun):
        return run
    return run if keep_objects else run.report


def resume_scenario(
    state_dir: str,
    step: Optional[int] = None,
    keep_objects: bool = False,
    interrupt_after: Optional[int] = None,
) -> Union[SimulationReport, SimulationRun, InterruptedRun]:
    """Continue a checkpointed scenario from ``state_dir`` to completion.

    Loads the latest (or the requested) checkpoint, verifies the
    pickled chain against the canonical snapshot's ``state_root``,
    restores the entropy stream and nonce counter to their recorded
    positions, and re-enters the loop.  Checkpointing continues at the
    cadence the original run used.
    """
    from repro.store import NodeStore

    store = NodeStore.open(state_dir)
    envelope, _entry = store.load_checkpoint(step)
    continuation: _Continuation = envelope["payload"]["continuation"]
    runtime = envelope["runtime"]
    continuation.dragoon.attach_store(store)
    with scoped_tx_nonces(runtime["nonce_position"]), deterministic_entropy(
        continuation.scenario.seed, state=runtime["rng"]
    ):
        # Re-align the canonical layer to the checkpoint being resumed:
        # the manifest may point at a *later* snapshot (a later
        # checkpoint, or the original run's final save), and journalling
        # the resumed tail on top of that would leave the directory
        # unloadable if this process dies mid-resume.
        store.save(continuation.dragoon.chain)
        run = _loop(continuation, store, interrupt_after)
    if isinstance(run, InterruptedRun):
        return run
    return run if keep_objects else run.report


def _checkpoint(store, continuation: _Continuation) -> None:
    store.checkpoint(
        continuation.dragoon.chain,
        continuation.step,
        {
            "chain": continuation.dragoon.chain,
            "continuation": continuation,
            "scenario": continuation.scenario.name,
            "seed": continuation.scenario.seed,
        },
    )


def _loop(
    continuation: _Continuation, store, interrupt_after: Optional[int]
) -> Union[SimulationRun, InterruptedRun]:
    """Advance the marketplace one block at a time until quiescence.

    Checkpointing sits between the block advance and the quiescence
    check, so a resumed continuation re-enters exactly where the
    original would have continued — and writing a checkpoint never
    consumes entropy or nonces, which is what keeps a checkpointed
    run's trajectory identical to an unobserved one.
    """
    state = continuation
    scenario = state.scenario
    dragoon = state.dragoon
    engine = dragoon.engine
    process = state.process
    population = state.population
    collector = state.collector
    sessions = state.sessions
    # getattr: continuations checkpointed before pools existed restore
    # without the field and must keep resuming on the serial path.
    verifier_pool = getattr(state, "verifier_pool", None)

    hooks = (
        verifier_pool.installed()
        if verifier_pool is not None
        else contextlib.nullcontext()
    )
    try:
        with hooks:
            run = _loop_body(state, store, interrupt_after)
    finally:
        # Drop the pools' child processes at every exit (quiescence,
        # interrupt, stall): the configuration survives, and any later
        # use — a resumed continuation, a kept-objects test — rebuilds
        # an executor lazily.
        if verifier_pool is not None:
            verifier_pool.close()
        if getattr(dragoon, "prover_pool", None) is not None:
            dragoon.prover_pool.close()
    return run


def _loop_body(
    continuation: _Continuation, store, interrupt_after: Optional[int]
) -> Union[SimulationRun, InterruptedRun]:
    state = continuation
    scenario = state.scenario
    dragoon = state.dragoon
    engine = dragoon.engine
    process = state.process
    population = state.population
    collector = state.collector
    sessions = state.sessions

    while True:
        due = process.due(state.step)
        if due:
            for session in dragoon.admit(due):
                sessions[session.contract_name] = session
                population.register_task(
                    session.contract_name,
                    dragoon.tasks[session.contract_name].requester.task,
                )
        # The population sees everything up to and including this
        # step's deployments, then fills slots; commits mine next block.
        population.observe()
        population.enroll(sessions)
        collector.before_step()
        block = engine.step()
        collector.on_block(block)
        state.step += 1

        # Closed-loop feedback: every newly settled task republishes.
        if isinstance(process, ClosedLoopArrivals):
            newly_settled = (
                collector.tasks_settled
                + collector.tasks_cancelled
                - state.settled_reported
            )
            for _ in range(newly_settled):
                process.notify_settled(state.step)
            state.settled_reported += newly_settled

        if scenario.prune_every and state.step % scenario.prune_every == 0:
            dropped = dragoon.chain.event_log.prune()
            state.events_pruned += dropped
            if dropped and store is not None:
                store.note_prune(dragoon.chain)

        if (
            process.exhausted
            and engine.all_done
            and not len(dragoon.chain.mempool)
        ):
            # One last drain so terminal events reach every consumer.
            population.observe()
            break

        # Checkpoint (and the simulated kill) only *after* the
        # quiescence check: a checkpoint written at the run's final
        # step would make the resumed loop mine one extra empty block
        # the uninterrupted run never saw, breaking byte-for-byte.
        if (
            store is not None
            and state.checkpoint_every
            and state.step % state.checkpoint_every == 0
        ):
            _checkpoint(store, state)

        if interrupt_after is not None and state.step >= interrupt_after:
            if not (
                state.checkpoint_every
                and state.step % state.checkpoint_every == 0
            ):
                _checkpoint(store, state)
            return InterruptedRun(
                state_dir=store.state_dir,
                step=state.step,
                scenario=scenario.name,
                seed=scenario.seed,
            )

        if state.step >= scenario.max_blocks:
            raise ProtocolError(
                "scenario %r still busy after %d blocks: %s"
                % (scenario.name, state.step, engine.describe_stuck())
            )

    if store is not None:
        store.save(dragoon.chain)

    dropped = sum(len(session.dropped) for session in sessions.values())
    report = SimulationReport(
        scenario=scenario.name,
        seed=scenario.seed,
        blocks=dragoon.chain.height,
        tasks_published=collector.tasks_published,
        tasks_settled=collector.tasks_settled,
        tasks_cancelled=collector.tasks_cancelled,
        total_transactions=collector.total_transactions,
        total_gas=collector.total_gas,
        gas_per_settled_task=collector.gas_per_settled_task(),
        gas_extras=collector.extras_total(),
        blocks_per_task=(
            dragoon.chain.height / collector.tasks_published
            if collector.tasks_published
            else 0.0
        ),
        settled_per_block=(
            collector.tasks_settled / dragoon.chain.height
            if dragoon.chain.height
            else 0.0
        ),
        commit_to_finalize=collector.commit_to_finalize.to_dict(),
        publish_to_finalize=collector.publish_to_finalize.to_dict(),
        worker_earnings=population.earnings(),
        peak_mempool_depth=collector.peak_mempool_depth,
        enrollments=population.enrollments,
        declined_enrollments=population.declined,
        dropped_steps=dropped,
        events_pruned=state.events_pruned,
    )
    return SimulationRun(
        report=report,
        dragoon=dragoon,
        population=population,
        collector=collector,
        sessions=sessions,
    )
