"""Seeded arrival processes: lazy, open-ended streams of task arrivals.

The paper evaluates Dragoon on hand-picked schedules; real marketplace
load is a *process*.  Each class here is a deterministic (seeded)
stochastic process emitting :class:`~repro.dragoon.TaskArrival`s in
non-decreasing ``at_block`` order, pulled lazily — nothing precomputes
a horizon, which is exactly the contract :meth:`Dragoon.serve` offers
its generator callers and the simulation runner exploits for open-ended
runs.

Two consumption styles:

* iterate the process (``Dragoon.serve(PoissonArrivals(...))``) — works
  for the self-contained processes whose future does not depend on the
  run (Poisson, burst, diurnal);
* pull block by block with :meth:`ArrivalProcess.due` — what
  :class:`~repro.sim.runner.SimulationRunner` does, and the only way to
  drive :class:`ClosedLoopArrivals`, whose republish decisions feed
  back from settlements.

Arrivals are *staffed* when the process is given worker accuracies
(answers sampled from the task's ground truth, seeded), or *unstaffed*
(``worker_answers=[]``) when a
:class:`~repro.sim.population.WorkerPopulation` will enroll workers
rationally through the marketplace instead.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Callable, Deque, Iterator, List, Optional, Sequence

from dataclasses import dataclass

from repro.core.task import HITTask, TaskParameters, sample_worker_answers
from repro.dragoon import TaskArrival
from repro.errors import ProtocolError
from repro.sim.seeding import derive_rng, derive_seed

#: Builds the ``index``-th task of a stream from a private PRNG.
TaskFactory = Callable[[int, random.Random], HITTask]


@dataclass(frozen=True)
class TaskTemplate:
    """The shape every synthesized task in a stream shares (ground
    truth and gold positions are still drawn per task)."""

    num_questions: int = 10
    num_golds: int = 3
    num_workers: int = 2
    quality_threshold: int = 2
    budget: int = 100

    def build(self, index: int, rng: random.Random) -> HITTask:
        ground_truth = [rng.randrange(2) for _ in range(self.num_questions)]
        gold_indexes = sorted(
            rng.sample(range(self.num_questions), self.num_golds)
        )
        parameters = TaskParameters(
            num_questions=self.num_questions,
            budget=self.budget,
            num_workers=self.num_workers,
            answer_range=(0, 1),
            quality_threshold=self.quality_threshold,
            num_golds=self.num_golds,
        )
        return HITTask(
            parameters,
            [
                "task %d, question %d" % (index, i)
                for i in range(self.num_questions)
            ],
            gold_indexes,
            [ground_truth[i] for i in gold_indexes],
            ground_truth,
        )


def default_task_factory(index: int, rng: random.Random) -> HITTask:
    """A compact marketplace task: 10 binary questions, 3 golds, 2 slots.

    Ground truth (and therefore the gold answers) is drawn from ``rng``,
    so every task in a stream is distinct but the stream is reproducible.
    """
    return TaskTemplate().build(index, rng)


class ArrivalProcess:
    """Base class: a seeded lazy stream with one-arrival lookahead.

    Subclasses implement :meth:`_generate`, yielding ``(index,
    at_block)`` placements in non-decreasing ``at_block`` order; the
    base class turns placements into full arrivals (task synthesis,
    optional staffing) and offers both the iterator and the pull API.
    """

    def __init__(
        self,
        seed: int = 0,
        task_factory: Optional[TaskFactory] = None,
        staffing: Optional[Sequence[float]] = None,
        requester_prefix: str = "req",
        evaluation: str = "batched",
        cancel_after: Optional[int] = None,
    ) -> None:
        self.seed = seed
        self.task_factory = task_factory or default_task_factory
        self.staffing = list(staffing) if staffing is not None else None
        self.requester_prefix = requester_prefix
        self.evaluation = evaluation
        self.cancel_after = cancel_after
        self._rng = derive_rng(seed, type(self).__name__)
        self._placements: Optional[Iterator] = None
        self._lookahead: Optional[TaskArrival] = None
        self._done = False
        self._pulled = 0  # placements drawn from the generator so far

    # -- persistence ----------------------------------------------------------
    #
    # The lazy placement stream is a generator — unpicklable — but it is
    # a *deterministic* function of the seed: the same process with the
    # same seed emits the same placements.  A checkpoint therefore
    # stores only how many placements have been drawn, and restore
    # fast-forwards a fresh generator (and with it the private PRNG) to
    # the same position.  The one-arrival lookahead travels by value.

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_placements"] = None
        state["_rng"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._rng = derive_rng(self.seed, type(self).__name__)
        if self._pulled and not self._done:
            self._placements = self._generate()
            for _ in range(self._pulled):
                next(self._placements)

    # -- subclass hook --------------------------------------------------------

    def _generate(self) -> Iterator:
        """Yield ``(index, at_block)`` placements, ``at_block`` sorted."""
        raise NotImplementedError

    # -- arrival synthesis ----------------------------------------------------

    def _make(self, index: int, at_block: int) -> TaskArrival:
        task = self.task_factory(index, derive_rng(self.seed, "task", index))
        answers: List[List[int]] = []
        if self.staffing is not None:
            slots = task.parameters.num_workers
            accuracies = [
                self.staffing[slot % len(self.staffing)]
                for slot in range(slots)
            ]
            answers = [
                sample_worker_answers(
                    task,
                    accuracy,
                    seed=derive_seed(self.seed, "answers", index, slot),
                )
                for slot, accuracy in enumerate(accuracies)
            ]
        return TaskArrival(
            at_block=at_block,
            requester_label="%s-%d" % (self.requester_prefix, index),
            task=task,
            worker_answers=answers,
            evaluation=self.evaluation,
            cancel_after=self.cancel_after,
        )

    # -- the stream -----------------------------------------------------------

    def _peek(self) -> Optional[TaskArrival]:
        if self._lookahead is None and not self._done:
            if self._placements is None:
                self._placements = self._generate()
            placement = next(self._placements, None)
            if placement is None:
                self._done = True
            else:
                self._pulled += 1
                self._lookahead = self._make(*placement)
        return self._lookahead

    @property
    def exhausted(self) -> bool:
        """True once the stream has no further arrivals to emit."""
        return self._peek() is None

    def due(self, step: int) -> List[TaskArrival]:
        """Pull every not-yet-delivered arrival with ``at_block <= step``."""
        ready: List[TaskArrival] = []
        while True:
            arrival = self._peek()
            if arrival is None or arrival.at_block > step:
                break
            ready.append(arrival)
            self._lookahead = None
        return ready

    def __iter__(self) -> Iterator[TaskArrival]:
        while True:
            arrival = self._peek()
            if arrival is None:
                return
            self._lookahead = None
            yield arrival


class PoissonArrivals(ArrivalProcess):
    """Memoryless traffic: exponential inter-arrival gaps at ``rate``
    tasks per block, quantized to block numbers."""

    def __init__(self, rate: float, tasks: int, **kwargs) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        super().__init__(**kwargs)
        self.rate = rate
        self.tasks = tasks

    def _generate(self) -> Iterator:
        clock = 0.0
        for index in range(self.tasks):
            clock += self._rng.expovariate(self.rate)
            yield index, int(clock)


class BurstArrivals(ArrivalProcess):
    """Flash crowds: ``burst_size`` simultaneous arrivals every ``gap``
    blocks, ``bursts`` times — the worst case for block sharing and the
    best case for batched verification."""

    def __init__(self, burst_size: int, gap: int, bursts: int, **kwargs) -> None:
        if burst_size <= 0 or bursts <= 0:
            raise ValueError("bursts must contain at least one task")
        if gap < 0:
            raise ValueError("burst gap cannot be negative")
        super().__init__(**kwargs)
        self.burst_size = burst_size
        self.gap = gap
        self.bursts = bursts

    def _generate(self) -> Iterator:
        index = 0
        for burst in range(self.bursts):
            for _ in range(self.burst_size):
                yield index, burst * self.gap
                index += 1


class DiurnalArrivals(ArrivalProcess):
    """A day/night cycle: per-block Poisson counts whose intensity
    swings sinusoidally between ``base_rate`` (midnight) and
    ``peak_rate`` (noon) over ``day_length`` blocks."""

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        day_length: int,
        tasks: int,
        **kwargs,
    ) -> None:
        if base_rate < 0 or peak_rate < base_rate:
            raise ValueError("need 0 <= base_rate <= peak_rate")
        if day_length <= 0:
            raise ValueError("day_length must be positive")
        super().__init__(**kwargs)
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.day_length = day_length
        self.tasks = tasks

    def _rate_at(self, block: int) -> float:
        phase = 2.0 * math.pi * (block % self.day_length) / self.day_length
        swing = 0.5 * (1.0 - math.cos(phase))  # 0 at midnight, 1 at noon
        return self.base_rate + (self.peak_rate - self.base_rate) * swing

    def _poisson(self, rate: float) -> int:
        # Knuth's method — fine at the per-block rates a chain can carry.
        threshold = math.exp(-rate)
        count, product = 0, 1.0
        while True:
            product *= self._rng.random()
            if product <= threshold:
                return count
            count += 1

    def _generate(self) -> Iterator:
        index, block = 0, 0
        while index < self.tasks:
            for _ in range(self._poisson(self._rate_at(block))):
                if index >= self.tasks:
                    break
                yield index, block
                index += 1
            block += 1


class ClosedLoopArrivals(ArrivalProcess):
    """Republish-on-settlement: the feedback regime.

    ``initial`` tasks arrive at block 0; every time the runner reports a
    settlement (:meth:`notify_settled`), the requester republishes a
    fresh task ``republish_delay`` blocks later, until ``max_tasks``
    have been issued.  Because the future of the stream depends on the
    run itself, this process cannot be drained by plain iteration — it
    must be pulled via :meth:`due` by a driver that feeds settlements
    back (the simulation runner does)."""

    def __init__(
        self,
        initial: int,
        republish_delay: int,
        max_tasks: int,
        **kwargs,
    ) -> None:
        if initial <= 0:
            raise ValueError("the closed loop needs at least one seed task")
        if republish_delay < 1:
            raise ValueError("republish_delay must be at least one block")
        if max_tasks < initial:
            raise ValueError("max_tasks cannot be below the initial batch")
        super().__init__(**kwargs)
        self.republish_delay = republish_delay
        self.max_tasks = max_tasks
        self._pending: Deque[TaskArrival] = deque(
            self._make(index, 0) for index in range(initial)
        )
        self._issued = initial

    def notify_settled(self, at_block: int) -> None:
        """One task settled at ``at_block``: schedule its replacement."""
        if self._issued >= self.max_tasks:
            return
        self._pending.append(
            self._make(self._issued, at_block + self.republish_delay)
        )
        self._issued += 1

    @property
    def exhausted(self) -> bool:
        return self._issued >= self.max_tasks and not self._pending

    def due(self, step: int) -> List[TaskArrival]:
        ready: List[TaskArrival] = []
        while self._pending and self._pending[0].at_block <= step:
            ready.append(self._pending.popleft())
        return ready

    def __iter__(self) -> Iterator[TaskArrival]:
        raise ProtocolError(
            "a closed-loop process needs settlement feedback — drive it "
            "through repro.sim.runner, not by iteration"
        )
