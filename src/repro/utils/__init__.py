"""Shared utilities: serialization and measurement helpers."""

from repro.utils.serialization import (
    int_to_bytes,
    bytes_to_int,
    encode_point,
    decode_point,
    encode_ciphertext,
    decode_ciphertext,
    hex_digest,
)
from repro.utils.timing import Stopwatch, MemoryMeter, measure

__all__ = [
    "int_to_bytes",
    "bytes_to_int",
    "encode_point",
    "decode_point",
    "encode_ciphertext",
    "decode_ciphertext",
    "hex_digest",
    "Stopwatch",
    "MemoryMeter",
    "measure",
]
