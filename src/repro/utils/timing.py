"""Measurement helpers for the benchmark harness.

The paper's Table I reports both wall-clock proving time and peak memory.
:class:`Stopwatch` measures elapsed time; :class:`MemoryMeter` measures peak
heap allocation via :mod:`tracemalloc` (our analogue of the paper's
peak-RSS figure; see DESIGN.md §6 for the caveat).

Timers read :func:`repro.obs.tracing.span_clock` — the same clock every
trace span records — so benchmark tables and ``--trace`` files agree on
methodology by construction.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Tuple

from repro.obs.tracing import span_clock


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = span_clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = span_clock() - self._start

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1000.0


class MemoryMeter:
    """Context manager measuring peak heap allocation in bytes.

    Nested use is supported: the meter snapshots the traced peak on entry
    and reports the delta on exit.
    """

    def __init__(self) -> None:
        self.peak_bytes = 0
        self._was_tracing = False
        self._baseline = 0

    def __enter__(self) -> "MemoryMeter":
        self._was_tracing = tracemalloc.is_tracing()
        if not self._was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        self._baseline, _ = tracemalloc.get_traced_memory()
        return self

    def __exit__(self, *exc_info: object) -> None:
        _, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = max(0, peak - self._baseline)
        if not self._was_tracing:
            tracemalloc.stop()

    @property
    def peak_mib(self) -> float:
        return self.peak_bytes / (1024.0 * 1024.0)


@dataclass
class Measurement:
    """A single (time, memory, result) measurement of a callable."""

    elapsed_seconds: float
    peak_bytes: int
    result: Any = field(repr=False, default=None)

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_seconds * 1000.0

    @property
    def peak_mib(self) -> float:
        return self.peak_bytes / (1024.0 * 1024.0)


def measure(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Measurement:
    """Run ``func`` once, measuring wall time and peak heap allocation."""
    meter = MemoryMeter()
    watch = Stopwatch()
    with meter:
        with watch:
            result = func(*args, **kwargs)
    return Measurement(watch.elapsed, meter.peak_bytes, result)


def best_of(func: Callable[[], Any], repeats: int = 3) -> Tuple[float, Any]:
    """Run ``func`` several times and return (best elapsed seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = span_clock()
        result = func()
        best = min(best, span_clock() - start)
    return best, result
