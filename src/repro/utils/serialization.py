"""Byte-level serialization helpers.

The on-chain cost model charges per calldata byte, so the protocol layer
needs deterministic, compact encodings for integers, curve points, and
ciphertexts.  Points are encoded uncompressed as 64 bytes (32-byte x, then
32-byte y), matching how Ethereum's BN-128 precompiles consume them; the
point at infinity is encoded as 64 zero bytes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

WORD_SIZE = 32

AffinePoint = Optional[Tuple[int, int]]


def int_to_bytes(value: int, length: int = WORD_SIZE) -> bytes:
    """Encode a non-negative integer big-endian into ``length`` bytes."""
    if value < 0:
        raise ValueError("cannot encode negative integer: %d" % value)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into a non-negative integer."""
    return int.from_bytes(data, "big")


def encode_point(point: AffinePoint) -> bytes:
    """Encode an affine point as 64 bytes (zeroes for infinity)."""
    if point is None:
        return b"\x00" * (2 * WORD_SIZE)
    x, y = point
    return int_to_bytes(x) + int_to_bytes(y)


def decode_point(data: bytes) -> AffinePoint:
    """Decode a 64-byte string into an affine point (or None for infinity)."""
    if len(data) != 2 * WORD_SIZE:
        raise ValueError("point encoding must be 64 bytes, got %d" % len(data))
    x = bytes_to_int(data[:WORD_SIZE])
    y = bytes_to_int(data[WORD_SIZE:])
    if x == 0 and y == 0:
        return None
    return (x, y)


def encode_ciphertext(ciphertext: Tuple[AffinePoint, AffinePoint]) -> bytes:
    """Encode an ElGamal ciphertext (c1, c2) as 128 bytes."""
    c1, c2 = ciphertext
    return encode_point(c1) + encode_point(c2)


def decode_ciphertext(data: bytes) -> Tuple[AffinePoint, AffinePoint]:
    """Decode 128 bytes into an ElGamal ciphertext (c1, c2)."""
    if len(data) != 4 * WORD_SIZE:
        raise ValueError("ciphertext encoding must be 128 bytes")
    return (decode_point(data[: 2 * WORD_SIZE]), decode_point(data[2 * WORD_SIZE :]))


def encode_ciphertext_vector(
    ciphertexts: Sequence[Tuple[AffinePoint, AffinePoint]]
) -> bytes:
    """Concatenate the encodings of a vector of ciphertexts."""
    return b"".join(encode_ciphertext(c) for c in ciphertexts)


def hex_digest(data: bytes) -> str:
    """Render a byte string as lowercase hex (convenience for logs/tests)."""
    return data.hex()
