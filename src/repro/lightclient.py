"""A light client: verify chain facts without trusting the node.

The marketplace only serves millions of participants if most of them do
*not* run a full node — and the paper's trust-minimization story
collapses the moment those participants have to believe whatever number
an RPC endpoint returns.  :class:`LightClient` closes that gap using
the two primitives a proof-serving node exposes:

* ``chain_header`` — the node's hash-chained commitment timeline
  (:class:`repro.store.trie.Header`): each link names its parent's
  hash, the latest sealed block, and the Merkle state root it commits
  to.
* ``get_proof`` — a :mod:`repro.store.trie` membership /
  non-membership proof for one state key, anchored to one of those
  headers.

The client's entire trust base is **one 32-byte header hash** — pinned
explicitly (out of band: a friend, a checkpoint file, a block explorer)
or adopted trust-on-first-use from the node's anchor.  From there:

1. :meth:`sync` extends the local verified header chain, recomputing
   every link's hash and refusing any break in the parent chain.
2. :meth:`prove` fetches a proof, requires its anchoring header to be a
   link of the *verified* chain (a bare root the node invented is
   rejected), and folds the proof back to that header's ``state_root``.

Everything else — balances, registration, task phases, settlement
receipts — is sugar over those two steps plus local decoding of the
canonical leaf encodings.  A lying node can refuse to answer; it cannot
make a false answer verify.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.ledger.accounts import Address
from repro.store import codec
from repro.store.trie import (
    HEADER_GENESIS,
    Header,
    ProofError,
    account_key,
    contract_key,
    entry_key,
    header_from_data,
    meta_key,
    registry_key,
    storage_key,
    verify_proof,
)

_ABSENT = object()


class LightClient:
    """Header-chain tracking + proof verification over one untrusted node.

    ``trust`` pins the expected hash of the node's anchor header
    (header 0).  Without it the client adopts the first anchor it sees
    — trust-on-first-use: a node can lie to a brand-new client, but it
    is committed from then on, and two clients comparing one hash
    detect the lie.
    """

    def __init__(self, chain, trust: Optional[bytes] = None) -> None:
        #: The untrusted node handle (an ``RpcChain`` — only its
        #: ``header``/``get_proof``/``payment_indexes`` methods are used,
        #: and nothing it returns is believed without verification).
        self.node = chain
        self._trust = trust
        #: The locally *verified* header chain (every hash recomputed,
        #: every parent link checked).
        self.headers: List[Header] = []
        self._hashes: List[bytes] = []

    # -- the header chain ---------------------------------------------------

    def _admit(self, header: Header) -> None:
        digest = header.header_hash()
        if not self.headers:
            if header.parent != HEADER_GENESIS:
                raise ProofError(
                    "anchor header's parent is not the genesis marker"
                )
            if self._trust is not None and digest != self._trust:
                raise ProofError(
                    "anchor header %s does not match the pinned trust "
                    "anchor %s" % (digest.hex(), self._trust.hex())
                )
            self._trust = digest  # trust-on-first-use adoption
        elif header.parent != self._hashes[-1]:
            raise ProofError(
                "header %d does not chain from the verified tip"
                % len(self.headers)
            )
        self.headers.append(header)
        self._hashes.append(digest)

    def sync(self) -> Header:
        """Extend the verified header chain to the node's tip.

        Fetches only the links this client has not verified yet; the
        earlier links are immutable (each later hash commits to them),
        so re-fetching would prove nothing new.  Returns the tip.
        """
        count = self.node.header()["count"]
        for index in range(len(self.headers), count):
            fetched = self.node.header(index)
            if fetched["index"] != index:
                raise ProofError(
                    "node returned header %s for index %d"
                    % (fetched["index"], index)
                )
            self._admit(header_from_data(fetched["header"]))
        if not self.headers:
            raise ProofError("node serves no headers")
        return self.headers[-1]

    # -- proofs -------------------------------------------------------------

    def prove(self, key: bytes) -> Tuple[bool, Optional[Any]]:
        """``(present, decoded_value)`` for one state key, verified.

        The node picks which header to anchor the proof to (its
        current tip), but the client only accepts an anchor that is a
        link of its own verified chain — byte-equal at the claimed
        index — so the proof folds to a root the client already
        believes, not one invented for this response.
        """
        response = self.node.get_proof(key)
        self.sync()
        index = response["header_index"]
        header = header_from_data(response["header"])
        if not isinstance(index, int) or not 0 <= index < len(self.headers):
            raise ProofError("proof anchors to unknown header %r" % (index,))
        if header != self.headers[index]:
            raise ProofError(
                "proof's header is not link %d of the verified chain" % index
            )
        present, encoded = verify_proof(header.state_root, key, response["proof"])
        if not present:
            return False, None
        return True, codec.decode(encoded)

    def _require(self, key: bytes, what: str) -> Any:
        present, value = self.prove(key)
        if not present:
            raise ProofError("%s is not in the verified state" % what)
        return value

    # -- verified facts -----------------------------------------------------

    def registered(self, address: Address) -> bool:
        """Whether ``address`` holds a registry grant (membership proof
        either way — absence is proven, not assumed)."""
        present, _ = self.prove(registry_key(address))
        return present

    def balance_of(self, address: Address) -> int:
        """``address``'s verified ledger balance."""
        label, balance = self._require(
            account_key(address), "account %s" % address
        )
        del label
        return balance

    def storage(
        self, contract_name: str, slot: str, default: Any = _ABSENT
    ) -> Any:
        """One verified contract-storage slot."""
        present, value = self.prove(storage_key(contract_name, slot))
        if not present:
            if default is _ABSENT:
                raise ProofError(
                    "slot %r of contract %r is not in the verified state"
                    % (slot, contract_name)
                )
            return default
        return value

    def period(self) -> int:
        """The chain clock's verified current period."""
        return self._require(meta_key("period"), "clock period")

    def task_phase(self, contract_name: str) -> int:
        """The verified *effective* protocol phase of one HIT task.

        Mirrors ``HITContract._effective_phase``: the contract stores
        the commit-phase marker once and derives the live phase from
        the ``finalized`` flag, the ``reveal_deadline``, and the clock
        — all three of which are provable state, so the derivation
        verifies end to end (1 = commit, 2 = reveal, 3 = evaluate,
        4 = done).
        """
        self._require(contract_key(contract_name), "contract %s" % contract_name)
        if self.storage(contract_name, "finalized", default=False):
            return 4
        reveal_deadline = self.storage(
            contract_name, "reveal_deadline", default=None
        )
        if reveal_deadline is None:
            return self.storage(contract_name, "phase")
        period = self.period()
        if period <= reveal_deadline:
            return 2
        if period <= reveal_deadline + 1:
            return 3
        return 4

    def ledger_entry(self, index: int) -> Dict[str, Any]:
        """One verified journal entry (kind/source/destination/amount/memo)."""
        return self._require(entry_key(index), "ledger entry %d" % index)

    def verify_settlement(
        self, contract_name: str, worker: Address
    ) -> Dict[str, Any]:
        """A settled task's receipt for one worker, fully verified.

        Three independent proofs: the task is ``finalized``, the
        worker's adjudication verdict is recorded in contract storage,
        and a matching ``pay`` entry exists in the ledger journal.  The
        journal *positions* to try come from the node
        (``chain_payments`` index hints) — untrusted, but harmless:
        each candidate entry is individually proven, and the contract's
        paying address is derived locally from its name, so the node
        cannot substitute another task's payment.

        Returns ``{"verdict", "amount", "entry_index"}`` (a verified
        rejection has ``amount`` 0 and no entry — rejected workers are
        not paid, and the *absence* of a verdict is an error, not a
        rejection).
        """
        if not self.storage(contract_name, "finalized", default=False):
            raise ProofError("task %r is not finalized" % contract_name)
        verdict = self.storage(
            contract_name, "adjudicated:" + worker.hex(), default=None
        )
        if verdict is None:
            raise ProofError(
                "task %r has no adjudication for worker %s"
                % (contract_name, worker)
            )
        if verdict.startswith("rejected"):
            return {"verdict": verdict, "amount": 0, "entry_index": None}
        contract_address = Address.from_label("contract:" + contract_name)
        for index in self.node.payment_indexes(worker):
            if not isinstance(index, int) or index < 0:
                continue
            present, entry = self.prove(entry_key(index))
            if not present or not isinstance(entry, dict):
                continue
            if (
                entry.get("kind") == "pay"
                and entry.get("source") == contract_address
                and entry.get("destination") == worker
                and entry.get("memo") == verdict
            ):
                return {
                    "verdict": verdict,
                    "amount": entry["amount"],
                    "entry_index": index,
                }
        raise ProofError(
            "no provable pay entry from %r to %s matches verdict %r"
            % (contract_name, worker, verdict)
        )
