"""The generic-ZKP HIT contract: what Dragoon replaces.

Prior art ([19, 32], the ZebraLancer line) implements the evaluate phase
with a zk-SNARK: the requester proves "the quality of the encrypted
answers is χ" inside a circuit, and the contract verifies a SNARK proof.
:class:`GenericZKPHITContract` reproduces that design point on our
substrate so the benches can compare the two *end to end*:

* the rejection transaction carries a real Groth16 proof (verified with
  our from-scratch pairing) whose public inputs bind the opened gold
  standards and the claimed quality;
* the contract charges the EIP-1108 pairing-check price (45k + 4·34k)
  plus the public-input scalar multiplications — the gas profile that
  made the paper call SNARK verification "not only computationally
  costly, but also financially expensive".

Scope note (documented deviation): the reduced statement circuit proves
the quality relation over the gold answers but does not re-execute the
ElGamal decryptions in-circuit (that is the ~1.7M-constraint part the
cost model accounts for).  The *on-chain verification cost* — what this
contract exists to measure — is identical either way: Groth16
verification is constant-size regardless of the circuit behind it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.baseline.groth16 import Proof, VerifyingKey, verify
from repro.chain.contract import CallContext
from repro.chain.gas import ECMUL
from repro.core.hit_contract import HITContract, PHASE_EVALUATE


class GenericZKPHITContract(HITContract):
    """A HIT contract whose rejections are SNARK-verified (the baseline)."""

    def set_verifying_key(self, verifying_key: VerifyingKey) -> None:
        """Install the statement's Groth16 verifying key (at deploy)."""
        self.storage["groth16_vk"] = verifying_key

    def _verifying_key(self) -> VerifyingKey:
        verifying_key = self._memory_read("groth16_vk")
        if verifying_key is None:
            raise ValueError("no verifying key installed")
        return verifying_key

    def _charge_groth16_verification(
        self, ctx: CallContext, num_public_inputs: int
    ) -> None:
        """EIP-1108 pricing of one Groth16 verification."""
        ctx.meter.charge_pairing(4)
        ctx.meter.charge_ecmul(max(1, num_public_inputs))
        ctx.meter.charge_ecadd(max(1, num_public_inputs))

    def evaluate_generic(self, ctx: CallContext) -> None:
        """Reject a worker with a SNARK proof of the quality statement.

        Args: ``(worker, claimed_quality, proof, public_inputs)`` where
        ``public_inputs`` are the circuit's publics: the opened gold
        answers followed by χ.  Fig. 4 semantics are preserved: a proof
        that fails verification, or publics inconsistent with the opened
        golds / claimed χ, results in the worker being *paid*.
        """
        worker, claimed_quality, proof, public_inputs = ctx.args
        self._require_phase(ctx, PHASE_EVALUATE, "evaluate_generic")
        ctx.require(ctx.sender == self._memory_read("requester"),
                    "only the requester evaluates")
        ctx.require(bool(self._memory_read("golden_opened")),
                    "gold standards must be opened first")
        ctx.require(self._memory_read("revealed:" + worker.hex()) is not None,
                    "worker did not reveal")
        ctx.require(
            self._memory_read("adjudicated:" + worker.hex()) is None,
            "worker already adjudicated",
        )

        parameters = self._parameters()
        gold_answers: List[int] = self._memory_read("gold_answers")

        def _proof_is_valid() -> bool:
            if not isinstance(proof, Proof):
                return False
            # The publics must be exactly (gold answers .. , chi): a
            # cheating requester cannot prove against different golds.
            expected_publics = list(gold_answers) + [claimed_quality]
            if list(public_inputs) != expected_publics:
                return False
            self._charge_groth16_verification(ctx, len(public_inputs))
            return verify(self._verifying_key(), list(public_inputs), proof)

        if claimed_quality >= parameters.quality_threshold or not _proof_is_valid():
            self._pay_worker(ctx, worker, parameters, verdict="paid-evaluate")
        else:
            self._sstore(ctx, "adjudicated:" + worker.hex(), "rejected-quality")
            self.emit(
                ctx,
                "evaluated",
                topics=(worker.value,),
                payload={"worker": worker, "quality": claimed_quality,
                         "verdict": "rejected", "scheme": "groth16"},
            )
