"""R1CS → QAP reduction: polynomials over the BN-128 scalar field.

Groth16 proves satisfiability of a *quadratic arithmetic program*: each
R1CS column becomes a polynomial interpolated over the constraint
domain, and the witness satisfies the system iff ``A(x)·B(x) - C(x)`` is
divisible by the domain's vanishing polynomial ``Z(x)``.

Interpolation is plain Lagrange over the points ``1..m`` (circuits in
this repository are small; no FFT needed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baseline.r1cs import ConstraintSystem
from repro.crypto.field import CURVE_ORDER
from repro.errors import ConstraintError

_R = CURVE_ORDER


class Poly:
    """A dense polynomial over the scalar field (little-endian coeffs)."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Sequence[int]) -> None:
        trimmed = [c % _R for c in coeffs]
        while len(trimmed) > 1 and trimmed[-1] == 0:
            trimmed.pop()
        self.coeffs = trimmed or [0]

    @classmethod
    def zero(cls) -> "Poly":
        return cls([0])

    @classmethod
    def one(cls) -> "Poly":
        return cls([1])

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return self.coeffs == [0]

    def __add__(self, other: "Poly") -> "Poly":
        size = max(len(self.coeffs), len(other.coeffs))
        return Poly(
            [
                (self.coeffs[i] if i < len(self.coeffs) else 0)
                + (other.coeffs[i] if i < len(other.coeffs) else 0)
                for i in range(size)
            ]
        )

    def __sub__(self, other: "Poly") -> "Poly":
        size = max(len(self.coeffs), len(other.coeffs))
        return Poly(
            [
                (self.coeffs[i] if i < len(self.coeffs) else 0)
                - (other.coeffs[i] if i < len(other.coeffs) else 0)
                for i in range(size)
            ]
        )

    def __mul__(self, other: "Poly") -> "Poly":
        if self.is_zero() or other.is_zero():
            return Poly.zero()
        product = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                product[i + j] += a * b
        return Poly(product)

    def scale(self, factor: int) -> "Poly":
        return Poly([c * factor for c in self.coeffs])

    def evaluate(self, x: int) -> int:
        result = 0
        for coeff in reversed(self.coeffs):
            result = (result * x + coeff) % _R
        return result

    def divmod(self, divisor: "Poly") -> Tuple["Poly", "Poly"]:
        """Polynomial long division; returns (quotient, remainder)."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        remainder = list(self.coeffs)
        quotient = [0] * max(1, len(remainder) - len(divisor.coeffs) + 1)
        inv_lead = pow(divisor.coeffs[-1], -1, _R)
        for shift in range(len(remainder) - len(divisor.coeffs), -1, -1):
            factor = remainder[shift + len(divisor.coeffs) - 1] * inv_lead % _R
            if factor:
                quotient[shift] = factor
                for i, d in enumerate(divisor.coeffs):
                    remainder[shift + i] = (remainder[shift + i] - factor * d) % _R
        return Poly(quotient), Poly(remainder)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash(tuple(self.coeffs))

    def __repr__(self) -> str:
        return "Poly(deg=%d)" % self.degree


def lagrange_interpolate(points: Sequence[Tuple[int, int]]) -> Poly:
    """The unique polynomial through the given (x, y) points."""
    result = Poly.zero()
    for i, (xi, yi) in enumerate(points):
        if yi % _R == 0:
            continue
        numerator = Poly.one()
        denominator = 1
        for j, (xj, _) in enumerate(points):
            if i == j:
                continue
            numerator = numerator * Poly([-xj, 1])
            denominator = denominator * (xi - xj) % _R
        result = result + numerator.scale(yi * pow(denominator, -1, _R))
    return result


class QAP:
    """A quadratic arithmetic program derived from an R1CS."""

    def __init__(
        self,
        a_polys: List[Poly],
        b_polys: List[Poly],
        c_polys: List[Poly],
        target: Poly,
        num_public: int,
    ) -> None:
        self.a_polys = a_polys
        self.b_polys = b_polys
        self.c_polys = c_polys
        self.target = target
        self.num_public = num_public

    @property
    def num_variables(self) -> int:
        return len(self.a_polys)

    @property
    def degree(self) -> int:
        return self.target.degree

    @classmethod
    def from_r1cs(cls, system: ConstraintSystem) -> "QAP":
        """Interpolate each R1CS column over the domain ``1..m``."""
        num_vars = system.num_variables
        domain = list(range(1, system.num_constraints + 1))

        columns_a: List[Dict[int, int]] = [dict() for _ in range(num_vars)]
        columns_b: List[Dict[int, int]] = [dict() for _ in range(num_vars)]
        columns_c: List[Dict[int, int]] = [dict() for _ in range(num_vars)]
        for row, constraint in enumerate(system.constraints):
            for var, coeff in constraint.a.terms.items():
                columns_a[var][domain[row]] = coeff
            for var, coeff in constraint.b.terms.items():
                columns_b[var][domain[row]] = coeff
            for var, coeff in constraint.c.terms.items():
                columns_c[var][domain[row]] = coeff

        def interpolate_column(column: Dict[int, int]) -> Poly:
            points = [(x, column.get(x, 0)) for x in domain]
            return lagrange_interpolate(points)

        a_polys = [interpolate_column(col) for col in columns_a]
        b_polys = [interpolate_column(col) for col in columns_b]
        c_polys = [interpolate_column(col) for col in columns_c]

        target = Poly.one()
        for x in domain:
            target = target * Poly([-x, 1])
        return cls(a_polys, b_polys, c_polys, target, system.num_public)

    def witness_polynomials(
        self, assignment: Sequence[int]
    ) -> Tuple[Poly, Poly, Poly]:
        """The combined A(x), B(x), C(x) for a full witness."""
        if len(assignment) != self.num_variables:
            raise ConstraintError("assignment length mismatch")

        def combine(polys: List[Poly]) -> Poly:
            total = Poly.zero()
            for value, poly in zip(assignment, polys):
                if value % _R:
                    total = total + poly.scale(value)
            return total

        return combine(self.a_polys), combine(self.b_polys), combine(self.c_polys)

    def quotient(self, assignment: Sequence[int]) -> Poly:
        """H(x) = (A·B - C) / Z; raises if the witness is invalid."""
        a, b, c = self.witness_polynomials(assignment)
        numerator = a * b - c
        quotient, remainder = numerator.divmod(self.target)
        if not remainder.is_zero():
            raise ConstraintError("witness does not satisfy the QAP")
        return quotient
