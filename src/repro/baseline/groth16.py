"""Groth16 over BN-128 — the generic zk-SNARK the paper benchmarks against.

A complete implementation: trusted setup, proving, and pairing-based
verification, all on the from-scratch BN-128 of :mod:`repro.crypto`.
Proofs are 3 group elements; verification is 4 pairings plus one
multi-scalar multiplication over the public inputs — exactly the cost
profile that makes SNARK verification expensive on-chain (the paper's
"12 pairings already spend ~500k gas" remark; EIP-1108 prices a
4-pairing check at 45k + 4·34k = 181k gas *before* the rest of the
verifier).

The prover follows the real algorithm: it interpolates the witness
polynomials, divides by the vanishing polynomial, and evaluates in the
exponent against the CRS powers — no trapdoor shortcuts.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baseline.qap import QAP, Poly
from repro.baseline.r1cs import ConstraintSystem
from repro.crypto.curve import G1Point, msm
from repro.crypto.field import CURVE_ORDER
from repro.crypto.g2 import G2_GENERATOR, Point as G2PointT, point_add, point_mul
from repro.crypto.pairing import pairing, pairing_check
from repro.crypto.tower import FQ12
from repro.errors import SetupError

_R = CURVE_ORDER
_G1 = G1Point.generator()


def _random_nonzero() -> int:
    while True:
        value = secrets.randbelow(_R)
        if value:
            return value


def _g2_add(p: G2PointT, q: G2PointT) -> G2PointT:
    return point_add(p, q)


def _g2_mul(p: G2PointT, scalar: int) -> G2PointT:
    return point_mul(p, scalar % _R)


@dataclass
class ProvingKey:
    """The prover's CRS (powers of tau and per-variable terms)."""

    alpha_g1: G1Point
    beta_g1: G1Point
    beta_g2: G2PointT
    delta_g1: G1Point
    delta_g2: G2PointT
    tau_powers_g1: List[G1Point]  # [tau^i]_1, i = 0..deg
    tau_powers_g2: List[G2PointT]  # [tau^i]_2
    l_terms: List[G1Point]  # [(beta*A_i + alpha*B_i + C_i)(tau) / delta]_1
    h_terms: List[G1Point]  # [tau^i * Z(tau) / delta]_1


@dataclass
class VerifyingKey:
    """The verifier's CRS."""

    alpha_g1: G1Point
    beta_g2: G2PointT
    gamma_g2: G2PointT
    delta_g2: G2PointT
    ic: List[G1Point]  # [(beta*A_i + alpha*B_i + C_i)(tau) / gamma]_1, public vars


@dataclass(frozen=True)
class Proof:
    """A Groth16 proof: (A, B, C) with A, C in G1 and B in G2."""

    a: G1Point
    b: G2PointT
    c: G1Point

    def size_bytes(self) -> int:
        """Serialized size: 64 (A) + 128 (B over Fp2) + 64 (C)."""
        return 64 + 128 + 64


def setup(qap: QAP) -> Tuple[ProvingKey, VerifyingKey]:
    """Run the trusted setup for a QAP; toxic waste is discarded."""
    alpha = _random_nonzero()
    beta = _random_nonzero()
    gamma = _random_nonzero()
    delta = _random_nonzero()
    tau = _random_nonzero()
    if qap.target.evaluate(tau) % _R == 0:
        raise SetupError("tau hit the constraint domain; re-run setup")

    gamma_inv = pow(gamma, -1, _R)
    delta_inv = pow(delta, -1, _R)
    z_tau = qap.target.evaluate(tau)
    degree = qap.degree

    tau_powers = [pow(tau, i, _R) for i in range(degree + 1)]
    tau_powers_g1 = [_G1 * p for p in tau_powers]
    tau_powers_g2 = [_g2_mul(G2_GENERATOR, p) for p in tau_powers]

    def combined_term(index: int) -> int:
        return (
            beta * qap.a_polys[index].evaluate(tau)
            + alpha * qap.b_polys[index].evaluate(tau)
            + qap.c_polys[index].evaluate(tau)
        ) % _R

    num_public = qap.num_public
    ic = [
        _G1 * (combined_term(i) * gamma_inv % _R) for i in range(num_public + 1)
    ]
    l_terms = [
        _G1 * (combined_term(i) * delta_inv % _R)
        for i in range(num_public + 1, qap.num_variables)
    ]
    h_terms = [
        _G1 * (tau_powers[i] * z_tau % _R * delta_inv % _R)
        for i in range(max(1, degree - 1))
    ]

    proving_key = ProvingKey(
        alpha_g1=_G1 * alpha,
        beta_g1=_G1 * beta,
        beta_g2=_g2_mul(G2_GENERATOR, beta),
        delta_g1=_G1 * delta,
        delta_g2=_g2_mul(G2_GENERATOR, delta),
        tau_powers_g1=tau_powers_g1,
        tau_powers_g2=tau_powers_g2,
        l_terms=l_terms,
        h_terms=h_terms,
    )
    verifying_key = VerifyingKey(
        alpha_g1=_G1 * alpha,
        beta_g2=proving_key.beta_g2,
        gamma_g2=_g2_mul(G2_GENERATOR, gamma),
        delta_g2=proving_key.delta_g2,
        ic=ic,
    )
    return proving_key, verifying_key


def _msm_g1(points: Sequence[G1Point], scalars: Sequence[int]) -> G1Point:
    return msm(list(points), list(scalars))


def _evaluate_in_exponent_g1(poly: Poly, powers: Sequence[G1Point]) -> G1Point:
    return _msm_g1(powers[: len(poly.coeffs)], poly.coeffs)


def _evaluate_in_exponent_g2(poly: Poly, powers: Sequence[G2PointT]) -> G2PointT:
    total: G2PointT = None
    for coeff, power in zip(poly.coeffs, powers):
        if coeff % _R:
            total = _g2_add(total, _g2_mul(power, coeff))
    return total


def prove(
    proving_key: ProvingKey, qap: QAP, assignment: Sequence[int]
) -> Proof:
    """Produce a Groth16 proof for a full satisfying witness."""
    a_poly, b_poly, _ = qap.witness_polynomials(assignment)
    h_poly = qap.quotient(assignment)

    r = secrets.randbelow(_R)
    s = secrets.randbelow(_R)

    # A = alpha + A(tau) + r*delta  (in G1)
    a_g1 = (
        proving_key.alpha_g1
        + _evaluate_in_exponent_g1(a_poly, proving_key.tau_powers_g1)
        + proving_key.delta_g1 * r
    )
    # B in G2 (and its G1 shadow for assembling C).
    b_g2 = _g2_add(
        _g2_add(
            proving_key.beta_g2,
            _evaluate_in_exponent_g2(b_poly, proving_key.tau_powers_g2),
        ),
        _g2_mul(proving_key.delta_g2, s),
    )
    b_g1 = (
        proving_key.beta_g1
        + _evaluate_in_exponent_g1(b_poly, proving_key.tau_powers_g1)
        + proving_key.delta_g1 * s
    )

    # C = sum_w a_w * L_w + H(tau)Z(tau)/delta + s*A + r*B - r*s*delta.
    witness_values = list(assignment[qap.num_public + 1 :])
    c_g1 = (
        _msm_g1(proving_key.l_terms, witness_values)
        + _evaluate_in_exponent_g1(h_poly, proving_key.h_terms)
        + a_g1 * s
        + b_g1 * r
        - proving_key.delta_g1 * (r * s % _R)
    )
    return Proof(a_g1, b_g2, c_g1)


def _ic_accumulator(
    verifying_key: VerifyingKey, public_inputs: Sequence[int]
) -> G1Point:
    ic_accumulator = verifying_key.ic[0]
    for value, point in zip(public_inputs, verifying_key.ic[1:]):
        if value % _R:
            ic_accumulator = ic_accumulator + point * (value % _R)
    return ic_accumulator


def verify(
    verifying_key: VerifyingKey, public_inputs: Sequence[int], proof: Proof
) -> bool:
    """The 4-pairing Groth16 verification equation.

    ``e(A, B) == e(alpha, beta) · e(IC(x), gamma) · e(C, delta)``,
    evaluated precompile-style as one 4-pair Miller-loop product with a
    single final exponentiation:
    ``e(-A, B) · e(alpha, beta) · e(IC(x), gamma) · e(C, delta) == 1``.
    """
    if len(public_inputs) != len(verifying_key.ic) - 1:
        return False
    ic_accumulator = _ic_accumulator(verifying_key, public_inputs)
    return pairing_check(
        [
            (-proof.a, proof.b),
            (verifying_key.alpha_g1, verifying_key.beta_g2),
            (ic_accumulator, verifying_key.gamma_g2),
            (proof.c, verifying_key.delta_g2),
        ]
    )


def verify_batch(
    verifying_key: VerifyingKey,
    instances: Sequence[Tuple[Sequence[int], Proof]],
) -> bool:
    """Batch-verify many Groth16 proofs under one verifying key.

    Random-linear-combination batching: with random 128-bit weights
    ``r_i``, all ``n`` verification equations fold into the single
    pairing-product check

        prod_i e(r_i·A_i, B_i)
            · e(−(sum r_i)·alpha, beta)
            · e(−sum r_i·IC_i(x_i), gamma)
            · e(−sum r_i·C_i, delta)  ==  1

    which is ``n + 3`` Miller loops and *one* final exponentiation,
    against ``4n`` Miller loops (and ``n`` final exponentiations) for
    sequential verification.  Equivalent to ``all(verify(...))`` up to
    ``2^-128`` soundness error per run.
    """
    if not instances:
        return True
    for public_inputs, _ in instances:
        if len(public_inputs) != len(verifying_key.ic) - 1:
            return False

    weights = [secrets.randbits(128) | 1 for _ in instances]
    weight_sum = sum(weights) % _R

    pairs: List[Tuple[G1Point, G2PointT]] = []
    ic_points: List[G1Point] = []
    c_points: List[G1Point] = []
    for weight, (public_inputs, proof) in zip(weights, instances):
        pairs.append((proof.a * weight, proof.b))
        ic_points.append(_ic_accumulator(verifying_key, public_inputs))
        c_points.append(proof.c)
    pairs.append((-(verifying_key.alpha_g1 * weight_sum), verifying_key.beta_g2))
    pairs.append((-msm(ic_points, weights), verifying_key.gamma_g2))
    pairs.append((-msm(c_points, weights), verifying_key.delta_g2))
    return pairing_check(pairs)


def prove_system(
    system: ConstraintSystem,
    proving_key: Optional[ProvingKey] = None,
    verifying_key: Optional[VerifyingKey] = None,
) -> Tuple[Proof, List[int], VerifyingKey]:
    """Convenience: QAP-ify, set up (if needed), and prove a built circuit."""
    qap = QAP.from_r1cs(system)
    if proving_key is None or verifying_key is None:
        proving_key, verifying_key = setup(qap)
    assignment = system.full_assignment()
    proof = prove(proving_key, qap, assignment)
    return proof, system.public_values(assignment), verifying_key
