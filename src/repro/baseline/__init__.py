"""The generic-ZKP (zk-SNARK) baseline: R1CS, QAP, Groth16, cost model."""

from repro.baseline.r1cs import ConstraintSystem, LinearCombination, LC, Constraint
from repro.baseline.qap import QAP, Poly, lagrange_interpolate
from repro.baseline.groth16 import (
    setup,
    prove,
    verify,
    prove_system,
    Proof,
    ProvingKey,
    VerifyingKey,
)
from repro.baseline.circuits import (
    multiplication_chain_circuit,
    quality_statement_circuit,
    range_membership_circuit,
    generic_vpke_statement,
    generic_poqoea_statement,
    rsa_oaep_decryption_constraints,
    exponential_elgamal_decryption_constraints,
    StatementSize,
)
from repro.baseline.costmodel import (
    SnarkCostModel,
    CostEstimate,
    paper_calibrated_model,
    measure_local_model,
)

__all__ = [
    "ConstraintSystem",
    "LinearCombination",
    "LC",
    "Constraint",
    "QAP",
    "Poly",
    "lagrange_interpolate",
    "setup",
    "prove",
    "verify",
    "prove_system",
    "Proof",
    "ProvingKey",
    "VerifyingKey",
    "multiplication_chain_circuit",
    "quality_statement_circuit",
    "range_membership_circuit",
    "generic_vpke_statement",
    "generic_poqoea_statement",
    "rsa_oaep_decryption_constraints",
    "exponential_elgamal_decryption_constraints",
    "StatementSize",
    "SnarkCostModel",
    "CostEstimate",
    "paper_calibrated_model",
    "measure_local_model",
]
