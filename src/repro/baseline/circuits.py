"""Statement circuits for the generic-ZKP baseline.

Two kinds of artifact live here:

1. **Runnable reduced-scale circuits** — real R1CS circuits our Groth16
   actually proves: the quality-comparison statement over the gold
   positions, and parameterizable multiplication chains used to measure
   per-constraint proving cost.
2. **Constraint-count estimators for the full-scale statement** — the
   paper's generic baseline proved VPKE/PoQoEA statements built from
   2048-bit RSA-OAEP decryption *inside the circuit* (Table II footnote),
   which is why proving took 37–112 s and 3.9–10.3 GB.  We cannot (and
   should not) run a multi-million-constraint prover in pure Python; the
   estimators below count those constraints so the cost model can
   extrapolate measured per-constraint costs to full scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baseline.r1cs import LC, ConstraintSystem
from repro.errors import ConstraintError


# ---------------------------------------------------------------------------
# Runnable reduced-scale circuits
# ---------------------------------------------------------------------------


def multiplication_chain_circuit(length: int, base: int = 3) -> ConstraintSystem:
    """A chain of ``length`` squarings: the knob for scaling experiments.

    Public: the chain output.  Private: the base.  Exactly ``length + 1``
    constraints, so proving cost is linear in ``length``.
    """
    if length < 1:
        raise ConstraintError("chain length must be positive")
    from repro.crypto.field import CURVE_ORDER

    value = base % CURVE_ORDER
    for _ in range(length):
        value = value * value % CURVE_ORDER

    cs = ConstraintSystem()
    out = cs.public_input("out", value)
    current = cs.private_witness("x0", base)
    for step in range(length):
        current = cs.mul(current, current, "x%d" % (step + 1))
    cs.enforce_equal(LC.of(current), LC.of(out), "chain output")
    return cs


def quality_statement_circuit(
    gold_answers: Sequence[int],
    claimed_quality: int,
    private_answers: Optional[Sequence[int]] = None,
) -> ConstraintSystem:
    """The arithmetic heart of the PoQoEA statement as a real circuit.

    Public: the gold ground truth ``s_i`` and the claimed quality ``χ``.
    Private: the worker's gold-position answers ``a_i``.  The circuit
    computes ``Σ [a_i == s_i]`` with equality gadgets and enforces it
    equals ``χ``.  (The full-scale baseline statement additionally proves
    each ``a_i`` is the decryption of a public ciphertext — that part is
    what the constraint estimators below account for.)
    """
    cs = ConstraintSystem()
    gold_vars = [
        cs.public_input("s%d" % i, answer) for i, answer in enumerate(gold_answers)
    ]
    chi = cs.public_input("chi", claimed_quality)
    answers = list(private_answers) if private_answers is not None else None

    total = LC.constant(0)
    for i, gold_var in enumerate(gold_vars):
        value = answers[i] if answers is not None else None
        answer_var = cs.private_witness("a%d" % i, value)
        match = cs.is_equal(answer_var, gold_var, "match%d" % i)
        total = total + LC.of(match)
    cs.enforce_equal(total, LC.of(chi), "quality sum")
    return cs


def range_membership_circuit(
    options: Sequence[int], value: Optional[int] = None
) -> ConstraintSystem:
    """Prove a private value lies in a small option set (outrange dual).

    Enforces ``Π (a - option) == 0`` over the range — the circuit form of
    the contract's range check.
    """
    cs = ConstraintSystem()
    answer = cs.private_witness("a", value)
    product_var = answer
    running = None
    for index, option in enumerate(options):
        diff_val = None if value is None else (value - option)
        diff = cs.private_witness("diff%d" % index, diff_val)
        cs.enforce_equal(LC.of(answer) - LC.constant(option), LC.of(diff))
        if running is None:
            running = diff
        else:
            running = cs.mul(running, diff, "prod%d" % index)
    assert running is not None
    cs.enforce(LC.of(running), LC.constant(1), LC.constant(0), "in-range product")
    return cs


# ---------------------------------------------------------------------------
# Full-scale constraint estimators (documented model, not run)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StatementSize:
    """Estimated R1CS size of a full-scale baseline statement."""

    name: str
    constraints: int
    notes: str


def rsa_oaep_decryption_constraints(modulus_bits: int = 2048) -> int:
    """Constraints to prove one RSA-OAEP decryption in-circuit.

    The dominant cost is the modular exponentiation: ``modulus_bits``
    modular multiplications (square-and-multiply with a full-size
    exponent).  An optimized SNARK bigint multiplier (Karatsuba-style
    limb products with batched carry/range checks, as in libsnark
    gadgetlib) costs ~12 constraints per 32-bit limb, i.e. ~770
    constraints per 2048-bit modular multiplication.  That lands the
    full decryption at ~1.6M constraints — consistent with the
    37 s / 3.9 GB the paper reports for the generic VPKE proof at
    libsnark's ~21 µs/constraint.
    """
    limbs = modulus_bits // 32
    per_modmul = limbs * 12  # optimized limb products + carry handling
    modexp = modulus_bits * per_modmul
    oaep_padding = 60_000  # two hash evaluations (SHA-ish) + masking
    return modexp + oaep_padding


def exponential_elgamal_decryption_constraints(scalar_bits: int = 254) -> int:
    """Constraints for an in-circuit BN-128 ElGamal decryption.

    One scalar multiplication (double-and-add over ``scalar_bits`` bits at
    ~6 constraints per affine group operation), plus the final comparison
    against the short-plaintext table.
    """
    per_bit = 2 * 6  # one double + (conditional) add
    return scalar_bits * per_bit + 2_000


def generic_vpke_statement(modulus_bits: int = 2048) -> StatementSize:
    """The baseline's VPKE statement (one verifiable decryption)."""
    return StatementSize(
        name="generic-VPKE",
        constraints=rsa_oaep_decryption_constraints(modulus_bits),
        notes="one in-circuit RSA-OAEP decryption (paper Table II footnote)",
    )


def generic_poqoea_statement(
    num_golds: int = 6, num_mismatches: int = 3, modulus_bits: int = 2048
) -> StatementSize:
    """The baseline's PoQoEA statement for one rejection.

    One in-circuit decryption per proven mismatch plus comparison glue
    over all gold positions.  With the ImageNet policy (reject at 3
    failed golds) this is ~3x the VPKE statement — matching the paper's
    112 s vs 37 s proving-time ratio.
    """
    per_decryption = rsa_oaep_decryption_constraints(modulus_bits)
    comparison_glue = num_golds * 5_000
    return StatementSize(
        name="generic-PoQoEA",
        constraints=num_mismatches * per_decryption + comparison_glue,
        notes="%d in-circuit decryptions + comparisons over %d golds"
        % (num_mismatches, num_golds),
    )
