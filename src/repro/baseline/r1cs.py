"""Rank-1 constraint systems over the BN-128 scalar field.

The generic-ZKP baseline the paper compares against (zk-SNARK) consumes
statements compiled to R1CS: a list of constraints ``<A,w> * <B,w> =
<C,w>`` over a witness vector ``w`` whose first entry is the constant 1,
followed by the public inputs and the private witness.

:class:`ConstraintSystem` is a small circuit builder with the gadgets the
statement circuits need: multiplication, booleanity, equality tests, bit
decomposition, and linear combinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.field import CURVE_ORDER
from repro.errors import ConstraintError

_R = CURVE_ORDER

ONE = 0  # index of the constant-one variable


class LinearCombination:
    """A sparse linear combination of witness variables."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Dict[int, int]] = None) -> None:
        self.terms: Dict[int, int] = {}
        if terms:
            for var, coeff in terms.items():
                coeff %= _R
                if coeff:
                    self.terms[var] = coeff

    @classmethod
    def of(cls, var: int, coeff: int = 1) -> "LinearCombination":
        return cls({var: coeff})

    @classmethod
    def constant(cls, value: int) -> "LinearCombination":
        return cls({ONE: value})

    def __add__(self, other: "LinearCombination") -> "LinearCombination":
        combined = dict(self.terms)
        for var, coeff in other.terms.items():
            combined[var] = (combined.get(var, 0) + coeff) % _R
        return LinearCombination(combined)

    def __sub__(self, other: "LinearCombination") -> "LinearCombination":
        return self + other.scale(_R - 1)

    def scale(self, factor: int) -> "LinearCombination":
        return LinearCombination(
            {var: coeff * factor for var, coeff in self.terms.items()}
        )

    def evaluate(self, assignment: Sequence[int]) -> int:
        total = 0
        for var, coeff in self.terms.items():
            total += coeff * assignment[var]
        return total % _R

    def __repr__(self) -> str:
        return "LC(%s)" % self.terms


LC = LinearCombination


@dataclass(frozen=True)
class Constraint:
    """One rank-1 constraint ``<A,w> * <B,w> = <C,w>``."""

    a: LinearCombination
    b: LinearCombination
    c: LinearCombination
    annotation: str = ""

    def is_satisfied(self, assignment: Sequence[int]) -> bool:
        return (
            self.a.evaluate(assignment) * self.b.evaluate(assignment)
        ) % _R == self.c.evaluate(assignment)


class ConstraintSystem:
    """An R1CS under construction, with witness synthesis.

    Variable layout: index 0 is the constant 1, indexes ``1..n_pub`` are
    public inputs, the rest are private witness variables.  Public
    variables must be allocated before private ones.
    """

    def __init__(self) -> None:
        self.names: List[str] = ["~one"]
        self.num_public = 0
        self.constraints: List[Constraint] = []
        self._assignment: List[Optional[int]] = [1]
        self._private_started = False

    # -- allocation -----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.names)

    def public_input(self, name: str, value: Optional[int] = None) -> int:
        if self._private_started:
            raise ConstraintError("allocate public inputs before private ones")
        index = len(self.names)
        self.names.append(name)
        self.num_public += 1
        self._assignment.append(None if value is None else value % _R)
        return index

    def private_witness(self, name: str, value: Optional[int] = None) -> int:
        self._private_started = True
        index = len(self.names)
        self.names.append(name)
        self._assignment.append(None if value is None else value % _R)
        return index

    def assign(self, var: int, value: int) -> None:
        self._assignment[var] = value % _R

    def value_of(self, var: int) -> int:
        value = self._assignment[var]
        if value is None:
            raise ConstraintError("variable %s unassigned" % self.names[var])
        return value

    # -- constraint emission -----------------------------------------------------

    def enforce(
        self,
        a: LinearCombination,
        b: LinearCombination,
        c: LinearCombination,
        annotation: str = "",
    ) -> None:
        self.constraints.append(Constraint(a, b, c, annotation))

    def enforce_equal(self, left: LinearCombination, right: LinearCombination,
                      annotation: str = "") -> None:
        """left == right, via (left - right) * 1 = 0."""
        self.enforce(left - right, LC.constant(1), LC.constant(0), annotation)

    # -- gadgets ---------------------------------------------------------------------

    def mul(self, x: int, y: int, name: str = "product") -> int:
        """Allocate z with constraint x * y = z."""
        x_val = self._assignment[x]
        y_val = self._assignment[y]
        value = None if x_val is None or y_val is None else x_val * y_val % _R
        z = self.private_witness(name, value)
        self.enforce(LC.of(x), LC.of(y), LC.of(z), "%s = %s * %s" % (name, x, y))
        return z

    def enforce_boolean(self, x: int) -> None:
        """x * (x - 1) = 0."""
        self.enforce(
            LC.of(x),
            LC.of(x) - LC.constant(1),
            LC.constant(0),
            "booleanity of %s" % self.names[x],
        )

    def is_zero(self, x: int, name: str = "is_zero") -> int:
        """Allocate b = [x == 0] with the standard inverse gadget.

        Constraints: x * inv = 1 - b  and  x * b = 0.
        """
        x_val = self._assignment[x]
        if x_val is None:
            b_val = inv_val = None
        else:
            b_val = 1 if x_val % _R == 0 else 0
            inv_val = 0 if x_val % _R == 0 else pow(x_val, -1, _R)
        b = self.private_witness(name, b_val)
        inv = self.private_witness(name + "~inv", inv_val)
        self.enforce(
            LC.of(x), LC.of(inv), LC.constant(1) - LC.of(b), "inv gadget"
        )
        self.enforce(LC.of(x), LC.of(b), LC.constant(0), "zero gadget")
        return b

    def is_equal(self, x: int, y: int, name: str = "eq") -> int:
        """Allocate b = [x == y]."""
        x_val, y_val = self._assignment[x], self._assignment[y]
        diff_val = (
            None if x_val is None or y_val is None else (x_val - y_val) % _R
        )
        diff = self.private_witness(name + "~diff", diff_val)
        self.enforce_equal(
            LC.of(x) - LC.of(y), LC.of(diff), "difference for %s" % name
        )
        return self.is_zero(diff, name)

    def decompose_bits(self, x: int, width: int, name: str = "bit") -> List[int]:
        """Allocate a ``width``-bit big-endian-free decomposition of x."""
        x_val = self._assignment[x]
        bits: List[int] = []
        recombined = LC.constant(0)
        for position in range(width):
            bit_val = None if x_val is None else (x_val >> position) & 1
            bit = self.private_witness("%s[%d]" % (name, position), bit_val)
            self.enforce_boolean(bit)
            recombined = recombined + LC.of(bit, 1 << position)
            bits.append(bit)
        self.enforce_equal(LC.of(x), recombined, "bit recomposition")
        return bits

    # -- evaluation -----------------------------------------------------------------------

    def full_assignment(self) -> List[int]:
        """The complete witness vector; raises on unassigned variables."""
        values: List[int] = []
        for index, value in enumerate(self._assignment):
            if value is None:
                raise ConstraintError(
                    "variable %s is unassigned" % self.names[index]
                )
            values.append(value)
        return values

    def is_satisfied(self, assignment: Optional[Sequence[int]] = None) -> bool:
        witness = list(assignment) if assignment is not None else self.full_assignment()
        return all(constraint.is_satisfied(witness) for constraint in self.constraints)

    def first_unsatisfied(self) -> Optional[Constraint]:
        witness = self.full_assignment()
        for constraint in self.constraints:
            if not constraint.is_satisfied(witness):
                return constraint
        return None

    def public_values(self, assignment: Optional[Sequence[int]] = None) -> List[int]:
        witness = list(assignment) if assignment is not None else self.full_assignment()
        return witness[1 : 1 + self.num_public]

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)
