"""Cost model for the generic-ZKP baseline at full statement scale.

The reproduction strategy for the "Generic ZKP" rows of Tables I and II
(see DESIGN.md §2, substitutions):

1. **Measure** our real Groth16 prover on reduced-scale circuits of
   increasing constraint count (:func:`measure_local_model`) and fit
   per-constraint time and memory.
2. **Count** the constraints of the full-scale statements the paper's
   baseline proved (:mod:`repro.baseline.circuits` estimators).
3. **Extrapolate** (1) × (2) to predict full-scale proving cost, and
   report it next to the paper's reported numbers.

:func:`paper_calibrated_model` inverts the paper's own numbers into
per-constraint costs (37 s / 3.9 GB over ~1.76M constraints ≈ 21 µs and
2.3 kB per constraint — libsnark-typical), so benches can show both the
locally-measured and the paper-derived scalings.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.baseline.circuits import (
    generic_poqoea_statement,
    generic_vpke_statement,
    multiplication_chain_circuit,
)
from repro.baseline.groth16 import prove, setup
from repro.baseline.qap import QAP


@dataclass(frozen=True)
class CostEstimate:
    """Predicted proving cost of a statement."""

    statement: str
    constraints: int
    seconds: float
    peak_bytes: float

    @property
    def peak_gib(self) -> float:
        return self.peak_bytes / (1024.0**3)


@dataclass(frozen=True)
class SnarkCostModel:
    """Linear per-constraint proving-cost model (time + memory)."""

    seconds_per_constraint: float
    bytes_per_constraint: float
    fixed_seconds: float = 0.0
    fixed_bytes: float = 0.0
    source: str = "unspecified"

    def estimate(self, statement: str, constraints: int) -> CostEstimate:
        return CostEstimate(
            statement=statement,
            constraints=constraints,
            seconds=self.fixed_seconds + self.seconds_per_constraint * constraints,
            peak_bytes=self.fixed_bytes + self.bytes_per_constraint * constraints,
        )

    def estimate_vpke(self) -> CostEstimate:
        size = generic_vpke_statement()
        return self.estimate(size.name, size.constraints)

    def estimate_poqoea(
        self, num_golds: int = 6, num_mismatches: int = 3
    ) -> CostEstimate:
        size = generic_poqoea_statement(num_golds, num_mismatches)
        return self.estimate(size.name, size.constraints)


def paper_calibrated_model() -> SnarkCostModel:
    """Per-constraint costs derived from the paper's own Table I.

    37 s and 3.9 GB for the ~1.76M-constraint generic VPKE statement give
    ~21 µs and ~2.3 kB per constraint — in line with published libsnark
    measurements on commodity hardware.
    """
    constraints = generic_vpke_statement().constraints
    return SnarkCostModel(
        seconds_per_constraint=37.0 / constraints,
        bytes_per_constraint=3.9 * (1024.0**3) / constraints,
        source="paper Table I (libsnark on Xeon E3-1220V2)",
    )


def measure_local_model(
    sizes: Sequence[int] = (8, 16, 32, 64),
) -> Tuple[SnarkCostModel, List[Tuple[int, float, int]]]:
    """Fit a cost model by timing our Groth16 prover at several sizes.

    Returns the fitted model and the raw ``(constraints, seconds,
    peak_bytes)`` samples.  The fit is least-squares linear in the
    constraint count (Groth16 proving is O(n log n); over this narrow
    range linear is an excellent approximation and is conservative when
    extrapolating).
    """
    samples: List[Tuple[int, float, int]] = []
    for size in sizes:
        system = multiplication_chain_circuit(size)
        qap = QAP.from_r1cs(system)
        proving_key, _ = setup(qap)
        assignment = system.full_assignment()

        tracemalloc.start()
        tracemalloc.reset_peak()
        start = time.perf_counter()
        prove(proving_key, qap, assignment)
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        samples.append((system.num_constraints, elapsed, peak))

    # Least-squares fit: cost = fixed + slope * constraints.
    n = len(samples)
    xs = [float(s[0]) for s in samples]
    times = [s[1] for s in samples]
    mems = [float(s[2]) for s in samples]
    mean_x = sum(xs) / n
    var_x = sum((x - mean_x) ** 2 for x in xs) or 1.0

    def fit(ys: List[float]) -> Tuple[float, float]:
        mean_y = sum(ys) / n
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
        return max(slope, 0.0), max(mean_y - slope * mean_x, 0.0)

    time_slope, time_fixed = fit(times)
    mem_slope, mem_fixed = fit(mems)
    model = SnarkCostModel(
        seconds_per_constraint=time_slope,
        bytes_per_constraint=mem_slope,
        fixed_seconds=time_fixed,
        fixed_bytes=mem_fixed,
        source="measured: pure-Python Groth16 on multiplication chains",
    )
    return model, samples
