"""Incentive analysis: honest effort dominates under Dragoon."""

import pytest

from repro.analysis.incentives import (
    IncentiveParameters,
    binomial_at_least,
    copy_paste,
    honest_dominates,
    honest_effort,
    minimum_viable_reward,
    random_guessing,
    strategy_profile,
)


def test_binomial_at_least_edges():
    assert binomial_at_least(6, 0, 0.5) == 1.0
    assert binomial_at_least(6, 7, 0.5) == 0.0
    assert binomial_at_least(6, 6, 1.0) == pytest.approx(1.0)
    assert binomial_at_least(6, 1, 0.0) == 0.0


def test_binomial_at_least_known_value():
    # P[X >= 1], X ~ Bin(2, 0.5) = 3/4.
    assert binomial_at_least(2, 1, 0.5) == pytest.approx(0.75)


def test_honest_worker_usually_paid():
    outcome = honest_effort(IncentiveParameters())
    assert outcome.pay_probability > 0.99
    assert outcome.expected_utility > 0


def test_random_guessing_on_imagenet_policy():
    """Guessing 6 binary golds needs >= 4 right: P ~ 34% — positive
    expected reward, but still dominated by honest effort."""
    params = IncentiveParameters()
    guess = random_guessing(params)
    assert 0.30 < guess.pay_probability < 0.40
    assert honest_effort(params).expected_utility > guess.expected_utility


def test_copy_paste_worthless_under_dragoon():
    outcome = copy_paste(IncentiveParameters())
    assert outcome.pay_probability == 0.0
    assert outcome.expected_utility < 0  # burns the submission fee


def test_copy_paste_dominates_on_naive_chain():
    """On a transparent chain (the paper's §I warning) copying is the
    best response — the tragedy Dragoon exists to prevent."""
    params = IncentiveParameters()
    outcomes = {o.name: o for o in strategy_profile(params, naive_chain=True)}
    assert (
        outcomes["copy-paste"].expected_utility
        > outcomes["honest effort"].expected_utility
    )


def test_honest_dominates_under_dragoon():
    assert honest_dominates(IncentiveParameters())


def test_stricter_threshold_punishes_guessers():
    lax = IncentiveParameters(quality_threshold=2)
    strict = IncentiveParameters(quality_threshold=6)
    assert (
        random_guessing(strict).pay_probability
        < random_guessing(lax).pay_probability
    )


def test_minimum_viable_reward_sensible():
    params = IncentiveParameters()
    minimum = minimum_viable_reward(params)
    assert 0 < minimum < params.reward  # $5 is comfortably viable
    # At (just under) the minimum, honesty is not strictly dominant.
    below = IncentiveParameters(reward=minimum * 0.5)
    assert not honest_dominates(below) or honest_effort(below).expected_utility <= 0


def test_wider_range_hurts_guessers_only():
    binary = IncentiveParameters(range_size=2)
    wide = IncentiveParameters(range_size=8)
    assert (
        random_guessing(wide).pay_probability
        < random_guessing(binary).pay_probability
    )
    assert honest_effort(wide).pay_probability == honest_effort(binary).pay_probability
