"""Schnorr PoK and Chaum–Pedersen DDH-tuple proofs."""

import pytest

from repro.crypto.curve import G1Point, random_scalar
from repro.crypto.random_oracle import RandomOracle
from repro.crypto.schnorr import (
    chaum_pedersen_prove,
    chaum_pedersen_verify,
    schnorr_prove,
    schnorr_simulate,
    schnorr_verify,
)

G = G1Point.generator()


def test_schnorr_roundtrip():
    secret = random_scalar()
    proof = schnorr_prove(secret)
    assert schnorr_verify(G * secret, proof)


def test_schnorr_wrong_statement_rejected():
    secret = random_scalar()
    proof = schnorr_prove(secret)
    assert not schnorr_verify(G * (secret + 1), proof)


def test_schnorr_context_binding():
    secret = random_scalar()
    proof = schnorr_prove(secret, context=b"task-1")
    assert schnorr_verify(G * secret, proof, context=b"task-1")
    assert not schnorr_verify(G * secret, proof, context=b"task-2")


def test_schnorr_tampered_response_rejected():
    from repro.crypto.schnorr import SchnorrProof

    secret = random_scalar()
    proof = schnorr_prove(secret)
    tampered = SchnorrProof(proof.commitment, proof.response + 1)
    assert not schnorr_verify(G * secret, tampered)


def test_schnorr_simulator_fools_verifier_with_programmed_oracle():
    oracle = RandomOracle()
    public = G * random_scalar()  # simulator never learns the secret
    forged = schnorr_simulate(public, oracle=oracle)
    assert schnorr_verify(public, forged, oracle=oracle)


def test_schnorr_simulated_proof_fails_against_fresh_oracle():
    oracle = RandomOracle()
    public = G * random_scalar()
    forged = schnorr_simulate(public, oracle=oracle)
    assert not schnorr_verify(public, forged, oracle=RandomOracle())


def test_chaum_pedersen_roundtrip():
    secret = random_scalar()
    base_v = G * 777
    proof = chaum_pedersen_prove(secret, base_v)
    assert chaum_pedersen_verify(G * secret, base_v, base_v * secret, proof)


def test_chaum_pedersen_non_ddh_tuple_rejected():
    secret = random_scalar()
    base_v = G * 777
    proof = chaum_pedersen_prove(secret, base_v)
    # w is NOT base_v^secret:
    assert not chaum_pedersen_verify(
        G * secret, base_v, base_v * (secret + 1), proof
    )


def test_chaum_pedersen_context_binding():
    secret = random_scalar()
    base_v = G * 3
    proof = chaum_pedersen_prove(secret, base_v, context=b"a")
    assert not chaum_pedersen_verify(
        G * secret, base_v, base_v * secret, proof, context=b"b"
    )


def test_proof_serialization_sizes():
    secret = random_scalar()
    assert len(schnorr_prove(secret).to_bytes()) == 96
    assert len(chaum_pedersen_prove(secret, G * 2).to_bytes()) == 160
