"""The Swarm-like content-addressed store: integrity end to end."""

import pytest

from repro.crypto.keccak import keccak256
from repro.storage.swarm import SwarmError, SwarmStore


def test_put_get_roundtrip():
    store = SwarmStore()
    digest = store.put(b"task questions")
    assert store.get(digest) == b"task questions"


def test_digest_is_keccak():
    store = SwarmStore()
    assert store.put(b"blob") == keccak256(b"blob")


def test_missing_content():
    store = SwarmStore()
    with pytest.raises(SwarmError):
        store.get(b"\x00" * 32)


def test_has_and_len():
    store = SwarmStore()
    digest = store.put(b"a")
    store.put(b"b")
    assert store.has(digest)
    assert not store.has(b"\x01" * 32)
    assert len(store) == 2


def test_idempotent_put():
    store = SwarmStore()
    d1 = store.put(b"same")
    d2 = store.put(b"same")
    assert d1 == d2
    assert len(store) == 1
    assert store.put_count == 2


def test_corruption_detected():
    """A tampered blob fails the integrity check on fetch — this is why
    committing the digest on-chain is safe."""
    store = SwarmStore()
    digest = store.put(b"honest questions")
    store.corrupt(digest, b"tampered questions")
    with pytest.raises(SwarmError):
        store.get(digest)


def test_corrupt_requires_existing():
    store = SwarmStore()
    with pytest.raises(SwarmError):
        store.corrupt(b"\x00" * 32, b"x")


def test_iteration():
    store = SwarmStore()
    digests = {store.put(b"a"), store.put(b"b")}
    assert set(store) == digests
    assert store.get_count == 0
