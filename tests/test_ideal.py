"""The ideal functionality F_hit (Fig. 2) in isolation."""

import pytest

from repro.core.ideal import IdealHIT, PHASE_COLLECT, PHASE_EVALUATE
from repro.errors import ProtocolError
from repro.ledger.accounts import Address
from repro.ledger.ledger import Ledger
from tests.helpers import small_task

REQ = Address.from_label("req")
W0 = Address.from_label("w0")
W1 = Address.from_label("w1")
F = Address.from_label("F_hit")

GOOD = [0] * 10
BAD = [1] * 10


def _fresh(budget=100):
    ledger = Ledger()
    ledger.open_account(REQ, budget)
    ledger.open_account(W0, 0)
    ledger.open_account(W1, 0)
    task = small_task()
    functionality = IdealHIT(ledger, F)
    return ledger, task, functionality


def _publish(functionality, task):
    return functionality.publish(
        REQ, task.parameters, task.gold_indexes, task.gold_answers
    )


def test_publish_freezes_budget():
    ledger, task, f = _fresh()
    assert _publish(f, task)
    assert ledger.balance_of(REQ) == 0
    assert ledger.escrow_of(F) == 100
    assert f.phase == PHASE_COLLECT


def test_publish_nofund():
    ledger, task, f = _fresh()
    ledger.charge_fee(REQ, 50)  # drain below the budget
    assert not _publish(f, task)
    assert any(leak.tag == "nofund" for leak in f.leakage)


def test_double_publish_rejected():
    _, task, f = _fresh()
    _publish(f, task)
    with pytest.raises(ProtocolError):
        _publish(f, task)


def test_answers_fill_and_phase_advances():
    _, task, f = _fresh()
    _publish(f, task)
    assert f.answer(W0, GOOD)
    assert f.phase == PHASE_COLLECT
    assert f.answer(W1, BAD)
    assert f.phase == PHASE_EVALUATE


def test_duplicate_answer_ignored():
    _, task, f = _fresh()
    _publish(f, task)
    assert f.answer(W0, GOOD)
    assert not f.answer(W0, BAD)


def test_answer_leaks_only_length():
    _, task, f = _fresh()
    _publish(f, task)
    f.answer(W0, GOOD)
    answering = [l for l in f.leakage if l.tag == "answering"]
    assert answering[0].payload == ("w0", 10)


def test_evaluate_pays_qualified_only():
    ledger, task, f = _fresh()
    _publish(f, task)
    f.answer(W0, GOOD)
    f.answer(W1, BAD)
    f.evaluate(W0)
    f.evaluate(W1)
    outcome = f.finalize()
    assert ledger.balance_of(W0) == 50
    assert ledger.balance_of(W1) == 0
    assert outcome.verdicts["w0"] == "paid-evaluate"
    assert outcome.verdicts["w1"] == "rejected-quality"


def test_unevaluated_workers_paid_by_default():
    ledger, task, f = _fresh()
    _publish(f, task)
    f.answer(W0, BAD)
    f.answer(W1, BAD)
    outcome = f.finalize()  # requester silent
    assert ledger.balance_of(W0) == 50
    assert ledger.balance_of(W1) == 50
    assert outcome.payments == {"w0": 50, "w1": 50}


def test_bottom_answer_never_paid():
    ledger, task, f = _fresh()
    _publish(f, task)
    f.answer(W0, GOOD)
    f.answer(W1, None)  # ⊥
    outcome = f.finalize()
    assert ledger.balance_of(W0) == 50
    assert ledger.balance_of(W1) == 0
    assert ledger.balance_of(REQ) == 50


def test_outrange_dispute_rejects_cheat():
    ledger, task, f = _fresh()
    _publish(f, task)
    cheat_answers = [0] * 9 + [42]
    f.answer(W0, cheat_answers)
    f.answer(W1, GOOD)
    f.outrange(W0, 9)
    f.evaluate(W1)
    f.finalize()
    assert ledger.balance_of(W0) == 0
    assert ledger.balance_of(W1) == 50
    assert any(leak.tag == "outranged" for leak in f.leakage)


def test_false_outrange_accusation_pays_worker():
    ledger, task, f = _fresh()
    _publish(f, task)
    f.answer(W0, GOOD)
    f.answer(W1, GOOD)
    f.outrange(W0, 0)  # position 0 is in range
    f.finalize()
    assert ledger.balance_of(W0) == 50


def test_evaluate_before_phase_rejected():
    _, task, f = _fresh()
    _publish(f, task)
    f.answer(W0, GOOD)
    with pytest.raises(ProtocolError):
        f.evaluate(W0)


def test_evaluated_leak_exposes_golds():
    """Audibility: the gold standards become public at evaluation."""
    _, task, f = _fresh()
    _publish(f, task)
    f.answer(W0, GOOD)
    f.answer(W1, GOOD)
    f.evaluate(W0)
    leaks = [l for l in f.leakage if l.tag == "evaluated"]
    assert leaks[0].payload[1] == tuple(task.gold_indexes)
    assert leaks[0].payload[2] == tuple(task.gold_answers)


def test_finalize_refunds_leftover():
    ledger, task, f = _fresh()
    _publish(f, task)
    f.answer(W0, BAD)
    f.answer(W1, None)
    f.evaluate(W0)  # rejected
    f.finalize()
    assert ledger.balance_of(REQ) == 100
