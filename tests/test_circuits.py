"""Statement circuits and full-scale constraint estimators."""

import pytest

from repro.baseline.circuits import (
    exponential_elgamal_decryption_constraints,
    generic_poqoea_statement,
    generic_vpke_statement,
    multiplication_chain_circuit,
    quality_statement_circuit,
    range_membership_circuit,
    rsa_oaep_decryption_constraints,
)
from repro.errors import ConstraintError


def test_multiplication_chain_satisfied():
    cs = multiplication_chain_circuit(10)
    assert cs.is_satisfied()
    assert cs.num_constraints == 11  # 10 squarings + output equality


def test_multiplication_chain_scales_linearly():
    assert (
        multiplication_chain_circuit(40).num_constraints
        - multiplication_chain_circuit(20).num_constraints
        == 20
    )


def test_multiplication_chain_rejects_zero_length():
    with pytest.raises(ConstraintError):
        multiplication_chain_circuit(0)


@pytest.mark.parametrize(
    "golds,answers,chi,ok",
    [
        ([1, 0, 1], [1, 0, 1], 3, True),
        ([1, 0, 1], [1, 0, 1], 2, False),
        ([1, 0, 1], [0, 1, 0], 0, True),
        ([1, 0], [1, 1], 1, True),
    ],
)
def test_quality_statement_satisfiability(golds, answers, chi, ok):
    cs = quality_statement_circuit(golds, chi, answers)
    assert cs.is_satisfied() == ok


def test_quality_statement_publics_are_golds_and_chi():
    cs = quality_statement_circuit([1, 0], 1, [1, 1])
    assert cs.public_values() == [1, 0, 1]


@pytest.mark.parametrize("value,ok", [(0, True), (1, True), (2, True), (3, False)])
def test_range_membership(value, ok):
    cs = range_membership_circuit([0, 1, 2], value)
    assert cs.is_satisfied() == ok


def test_rsa_estimator_magnitude():
    """~1.7M constraints for 2048-bit RSA-OAEP — the scale that explains
    the paper's 37 s / 3.9 GB generic proving row."""
    constraints = rsa_oaep_decryption_constraints(2048)
    assert 1_000_000 < constraints < 3_000_000


def test_rsa_estimator_grows_superlinearly_in_modulus():
    assert rsa_oaep_decryption_constraints(4096) > 4 * rsa_oaep_decryption_constraints(2048) * 0.9


def test_elgamal_estimator_much_smaller_than_rsa():
    assert (
        exponential_elgamal_decryption_constraints()
        < rsa_oaep_decryption_constraints() / 100
    )


def test_vpke_statement_size():
    statement = generic_vpke_statement()
    assert statement.constraints == rsa_oaep_decryption_constraints()
    assert "RSA-OAEP" in statement.notes


def test_poqoea_statement_is_about_three_vpke():
    """Matches the paper's 112 s vs 37 s proving-time ratio (~3x)."""
    vpke = generic_vpke_statement().constraints
    poqoea = generic_poqoea_statement(num_golds=6, num_mismatches=3).constraints
    assert 2.8 < poqoea / vpke < 3.3
