"""Smoke-run every benchmark entry point with tiny parameters.

Benchmarks are the repo's reproduction artifacts, but they are not
collected by the tier-1 run (``pytest.ini`` scopes it to ``tests/``),
so without this module a refactor could break them invisibly until the
next full campaign.  Each bench file is executed here as its own pytest
session with ``DRAGOON_BENCH_SMOKE=1`` (tiny tasks, short sweeps, no
paper-number or timing assertions — see ``benchmarks/bench_helpers.py``)
and ``--benchmark-disable`` so pytest-benchmark runs every benched
callable exactly once.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_FILES = sorted(
    path.name for path in BENCH_DIR.glob("bench_*.py")
    if path.name != "bench_helpers.py"
)


def test_every_bench_file_is_covered():
    """A new bench_*.py is smoke-tested automatically; helpers are not."""
    assert BENCH_FILES, "no benchmarks found — did the layout move?"
    assert "bench_batch_verification.py" in BENCH_FILES


@pytest.mark.slow
@pytest.mark.parametrize("bench_file", BENCH_FILES)
def test_bench_smoke(bench_file):
    env = dict(os.environ)
    env["DRAGOON_BENCH_SMOKE"] = "1"
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(BENCH_DIR / bench_file),
            "-x",
            "-q",
            "--benchmark-disable",
            "-p",
            "no:cacheprovider",
        ],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        "%s failed in smoke mode:\n%s\n%s"
        % (bench_file, result.stdout[-4000:], result.stderr[-4000:])
    )
