"""R1CS builder and gadgets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baseline.r1cs import LC, ConstraintSystem, LinearCombination
from repro.crypto.field import CURVE_ORDER
from repro.errors import ConstraintError


def test_variable_layout():
    cs = ConstraintSystem()
    a = cs.public_input("a", 1)
    b = cs.private_witness("b", 2)
    assert a == 1 and b == 2
    assert cs.num_public == 1
    assert cs.names[0] == "~one"


def test_public_after_private_rejected():
    cs = ConstraintSystem()
    cs.private_witness("w", 0)
    with pytest.raises(ConstraintError):
        cs.public_input("late", 0)


def test_mul_gadget():
    cs = ConstraintSystem()
    x = cs.private_witness("x", 6)
    y = cs.private_witness("y", 7)
    z = cs.mul(x, y)
    assert cs.value_of(z) == 42
    assert cs.is_satisfied()


def test_unsatisfied_detected():
    cs = ConstraintSystem()
    x = cs.private_witness("x", 6)
    z = cs.mul(x, x)
    cs.assign(z, 35)  # wrong
    assert not cs.is_satisfied()
    assert cs.first_unsatisfied() is not None


def test_enforce_equal():
    cs = ConstraintSystem()
    x = cs.private_witness("x", 5)
    cs.enforce_equal(LC.of(x), LC.constant(5))
    assert cs.is_satisfied()
    cs2 = ConstraintSystem()
    y = cs2.private_witness("y", 5)
    cs2.enforce_equal(LC.of(y), LC.constant(6))
    assert not cs2.is_satisfied()


@pytest.mark.parametrize("value,ok", [(0, True), (1, True), (2, False)])
def test_boolean_gadget(value, ok):
    cs = ConstraintSystem()
    x = cs.private_witness("x", value)
    cs.enforce_boolean(x)
    assert cs.is_satisfied() == ok


@pytest.mark.parametrize("value,expected", [(0, 1), (5, 0), (CURVE_ORDER - 1, 0)])
def test_is_zero_gadget(value, expected):
    cs = ConstraintSystem()
    x = cs.private_witness("x", value)
    b = cs.is_zero(x)
    assert cs.value_of(b) == expected
    assert cs.is_satisfied()


def test_is_zero_gadget_rejects_lies():
    cs = ConstraintSystem()
    x = cs.private_witness("x", 5)
    b = cs.is_zero(x)
    cs.assign(b, 1)  # lie: claim 5 == 0
    assert not cs.is_satisfied()


@given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=100))
@settings(max_examples=30)
def test_is_equal_gadget(a, b):
    cs = ConstraintSystem()
    x = cs.private_witness("x", a)
    y = cs.private_witness("y", b)
    eq = cs.is_equal(x, y)
    assert cs.value_of(eq) == (1 if a == b else 0)
    assert cs.is_satisfied()


@given(st.integers(min_value=0, max_value=255))
@settings(max_examples=25)
def test_bit_decomposition(value):
    cs = ConstraintSystem()
    x = cs.private_witness("x", value)
    bits = cs.decompose_bits(x, 8)
    assert [cs.value_of(b) for b in bits] == [(value >> i) & 1 for i in range(8)]
    assert cs.is_satisfied()


def test_bit_decomposition_rejects_overflow():
    cs = ConstraintSystem()
    x = cs.private_witness("x", 256)
    cs.decompose_bits(x, 8)
    assert not cs.is_satisfied()


def test_linear_combination_arithmetic():
    lc = LC.of(1, 2) + LC.of(2, 3) - LC.of(1, 2)
    assert lc.terms == {2: 3}
    scaled = LC.of(1, 2).scale(5)
    assert scaled.terms == {1: 10}
    assert LC.constant(0).terms == {}


def test_lc_evaluate():
    assignment = [1, 10, 20]
    lc = LC.of(1, 2) + LC.of(2, 3) + LC.constant(7)
    assert lc.evaluate(assignment) == (2 * 10 + 3 * 20 + 7) % CURVE_ORDER


def test_unassigned_variable_detected():
    cs = ConstraintSystem()
    cs.private_witness("x")
    with pytest.raises(ConstraintError):
        cs.full_assignment()


def test_public_values_extraction():
    cs = ConstraintSystem()
    cs.public_input("a", 11)
    cs.public_input("b", 22)
    cs.private_witness("w", 33)
    assert cs.public_values() == [11, 22]
