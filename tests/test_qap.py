"""Polynomials, Lagrange interpolation, and the R1CS→QAP reduction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baseline.qap import QAP, Poly, lagrange_interpolate
from repro.baseline.r1cs import LC, ConstraintSystem
from repro.crypto.field import CURVE_ORDER
from repro.errors import ConstraintError

coeffs = st.lists(
    st.integers(min_value=0, max_value=CURVE_ORDER - 1), min_size=1, max_size=6
)


@given(coeffs, coeffs)
@settings(max_examples=25)
def test_poly_add_evaluates_pointwise(a, b):
    p, q = Poly(a), Poly(b)
    for x in (0, 1, 7):
        assert (p + q).evaluate(x) == (p.evaluate(x) + q.evaluate(x)) % CURVE_ORDER


@given(coeffs, coeffs)
@settings(max_examples=25)
def test_poly_mul_evaluates_pointwise(a, b):
    p, q = Poly(a), Poly(b)
    for x in (0, 1, 7):
        assert (p * q).evaluate(x) == (p.evaluate(x) * q.evaluate(x)) % CURVE_ORDER


def test_poly_normalizes_leading_zeros():
    assert Poly([1, 2, 0, 0]).coeffs == [1, 2]
    assert Poly([0, 0]).is_zero()
    assert Poly([0]).degree == 0


@given(coeffs, coeffs)
@settings(max_examples=25)
def test_divmod_reconstructs(a, b):
    p, q = Poly(a), Poly(b)
    if q.is_zero():
        return
    quotient, remainder = p.divmod(q)
    assert quotient * q + remainder == p
    assert remainder.is_zero() or remainder.degree < q.degree


def test_division_by_zero():
    with pytest.raises(ZeroDivisionError):
        Poly([1]).divmod(Poly([0]))


def test_lagrange_interpolation():
    points = [(1, 5), (2, 11), (3, 19)]
    poly = lagrange_interpolate(points)
    for x, y in points:
        assert poly.evaluate(x) == y
    assert poly.degree <= 2


def _cubic_system():
    cs = ConstraintSystem()
    out = cs.public_input("out", 35)
    x = cs.private_witness("x", 3)
    x2 = cs.mul(x, x)
    x3 = cs.mul(x2, x)
    cs.enforce(LC.of(x3) + LC.of(x) + LC.constant(5), LC.constant(1), LC.of(out))
    return cs


def test_qap_construction_shape():
    cs = _cubic_system()
    qap = QAP.from_r1cs(cs)
    assert qap.num_variables == cs.num_variables
    assert qap.degree == cs.num_constraints
    assert qap.num_public == 1


def test_qap_column_polys_interpolate_constraints():
    cs = _cubic_system()
    qap = QAP.from_r1cs(cs)
    witness = cs.full_assignment()
    a, b, c = qap.witness_polynomials(witness)
    # At every domain point, A·B == C (the constraint holds).
    for point in range(1, cs.num_constraints + 1):
        assert (
            a.evaluate(point) * b.evaluate(point) % CURVE_ORDER
            == c.evaluate(point)
        )


def test_qap_quotient_divides_cleanly():
    cs = _cubic_system()
    qap = QAP.from_r1cs(cs)
    h = qap.quotient(cs.full_assignment())
    witness = cs.full_assignment()
    a, b, c = qap.witness_polynomials(witness)
    assert a * b - c == h * qap.target


def test_qap_invalid_witness_rejected():
    cs = _cubic_system()
    qap = QAP.from_r1cs(cs)
    witness = cs.full_assignment()
    witness[-1] = (witness[-1] + 1) % CURVE_ORDER
    with pytest.raises(ConstraintError):
        qap.quotient(witness)


def test_qap_wrong_witness_length_rejected():
    cs = _cubic_system()
    qap = QAP.from_r1cs(cs)
    with pytest.raises(ConstraintError):
        qap.witness_polynomials([1, 2])


def test_target_vanishes_exactly_on_domain():
    cs = _cubic_system()
    qap = QAP.from_r1cs(cs)
    for point in range(1, cs.num_constraints + 1):
        assert qap.target.evaluate(point) == 0
    assert qap.target.evaluate(cs.num_constraints + 1) != 0
