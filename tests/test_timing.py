"""Measurement helpers behind the benchmark harness."""

import time

from repro.utils.timing import MemoryMeter, Stopwatch, best_of, measure


def test_stopwatch_measures_elapsed():
    with Stopwatch() as watch:
        time.sleep(0.01)
    assert watch.elapsed >= 0.009
    assert watch.elapsed_ms >= 9.0


def test_memory_meter_sees_allocation():
    with MemoryMeter() as meter:
        blob = bytearray(4 * 1024 * 1024)
        del blob
    assert meter.peak_bytes >= 3 * 1024 * 1024
    assert meter.peak_mib >= 3.0


def test_memory_meter_nested():
    with MemoryMeter() as outer:
        with MemoryMeter() as inner:
            blob = bytearray(1024 * 1024)
            del blob
    assert inner.peak_bytes >= 900 * 1024
    assert outer.peak_bytes >= 0


def test_measure_returns_result():
    measurement = measure(lambda a, b: a + b, 2, b=3)
    assert measurement.result == 5
    assert measurement.elapsed_seconds >= 0
    assert measurement.elapsed_ms == measurement.elapsed_seconds * 1000.0


def test_best_of_returns_minimum():
    calls = []

    def job():
        calls.append(1)
        return 42

    elapsed, result = best_of(job, repeats=3)
    assert result == 42
    assert len(calls) == 3
    assert elapsed >= 0
