"""The workload simulation subsystem: arrivals, population, metrics, runner.

Covers the reproducibility contract (a seeded scenario is byte-for-byte
stable), the open-ended serve path (generators, no precomputed
horizon), rational population behaviour, the closed-loop feedback
regime, and the report invariants the CI ``sim-smoke`` lane gates on.
"""

from __future__ import annotations

import pytest

from repro.dragoon import Dragoon
from repro.errors import ProtocolError
from repro.sim import (
    BurstArrivals,
    ClosedLoopArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    PopulationSpec,
    SCENARIO_PRESETS,
    Scenario,
    TaskTemplate,
    preset,
    run_scenario,
)


def tiny(name: str, seed: int = 3, tasks: int = 6, **overrides) -> Scenario:
    """A preset shrunk to test size (seconds, not minutes)."""
    scenario = preset(name, seed=seed, tasks=tasks)
    if overrides:
        from dataclasses import replace

        scenario = replace(scenario, **overrides)
    return scenario


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


def test_poisson_arrivals_are_seeded_and_ordered():
    first = [a.at_block for a in PoissonArrivals(rate=0.5, tasks=10, seed=1)]
    again = [a.at_block for a in PoissonArrivals(rate=0.5, tasks=10, seed=1)]
    other = [a.at_block for a in PoissonArrivals(rate=0.5, tasks=10, seed=2)]
    assert first == again
    assert first != other
    assert first == sorted(first)
    assert len(first) == 10


def test_arrival_tasks_are_distinct_but_reproducible():
    stream = list(PoissonArrivals(rate=1.0, tasks=3, seed=5))
    golds = [tuple(a.task.gold_answers) for a in stream]
    again = [
        tuple(a.task.gold_answers)
        for a in PoissonArrivals(rate=1.0, tasks=3, seed=5)
    ]
    assert golds == again
    truths = {tuple(a.task.ground_truth) for a in stream}
    assert len(truths) > 1  # ground truth is drawn per task


def test_staffed_arrivals_sample_answers():
    (arrival,) = list(
        PoissonArrivals(rate=1.0, tasks=1, seed=4, staffing=(1.0, 0.0))
    )
    perfect, hopeless = arrival.worker_answers
    assert list(perfect) == arrival.task.ground_truth
    assert all(
        answer != truth
        for answer, truth in zip(hopeless, arrival.task.ground_truth)
    )


def test_burst_arrivals_shape():
    blocks = [a.at_block for a in BurstArrivals(burst_size=3, gap=7, bursts=2, seed=0)]
    assert blocks == [0, 0, 0, 7, 7, 7]


def test_diurnal_arrivals_emit_exactly_n_tasks():
    stream = list(
        DiurnalArrivals(base_rate=0.2, peak_rate=1.5, day_length=8, tasks=9, seed=2)
    )
    assert len(stream) == 9
    blocks = [a.at_block for a in stream]
    assert blocks == sorted(blocks)


def test_closed_loop_requires_a_driver():
    process = ClosedLoopArrivals(initial=2, republish_delay=2, max_tasks=4, seed=0)
    with pytest.raises(ProtocolError):
        list(process)
    assert [a.at_block for a in process.due(0)] == [0, 0]
    assert not process.exhausted  # two more tasks may still be issued
    process.notify_settled(5)
    process.notify_settled(5)
    assert [a.at_block for a in process.due(7)] == [7, 7]
    assert process.exhausted


def test_arrival_pull_and_iteration_agree():
    by_iteration = [
        a.at_block for a in PoissonArrivals(rate=0.7, tasks=8, seed=9)
    ]
    process = PoissonArrivals(rate=0.7, tasks=8, seed=9)
    by_pull = []
    step = 0
    while not process.exhausted:
        by_pull.extend(a.at_block for a in process.due(step))
        step += 1
    assert by_pull == by_iteration


# ---------------------------------------------------------------------------
# Open-ended serve (the generator path)
# ---------------------------------------------------------------------------


def test_serve_accepts_a_generator_without_precomputed_horizon():
    process = PoissonArrivals(rate=1.0, tasks=12, seed=3, staffing=(0.95, 0.30))
    dragoon = Dragoon()
    outcomes = dragoon.serve(iter(process))  # a plain iterator: no len()
    assert len(outcomes) == 12
    assert all(outcome.contract.is_finalized() for outcome in outcomes)
    # Outcomes come back in arrival order.
    labels = [outcome.requester.label for outcome in outcomes]
    assert labels == ["req-%d" % index for index in range(12)]


def test_serve_rejects_unordered_generator():
    from repro.core.task import HITTask, TaskParameters
    from repro.dragoon import TaskArrival

    def task():
        parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
        return HITTask(parameters, ["q%d" % i for i in range(10)],
                       [0, 1, 2], [0, 0, 0], [0] * 10)

    good = [0] * 10

    def unordered():
        yield TaskArrival(4, "late", task(), [good, good])
        yield TaskArrival(1, "early", task(), [good, good])

    with pytest.raises(ProtocolError, match="ordered by at_block"):
        Dragoon().serve(unordered())


def test_serve_stall_error_names_stuck_sessions():
    from repro.core.task import HITTask, TaskParameters
    from repro.dragoon import TaskArrival

    parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
    task = HITTask(parameters, ["q%d" % i for i in range(10)],
                   [0, 1, 2], [0, 0, 0], [0] * 10)
    # One of two slots never fills and no cancel_after is configured.
    arrival = TaskArrival(0, "req", task, [[0] * 10])
    with pytest.raises(ProtocolError) as excinfo:
        Dragoon().serve([arrival])
    message = str(excinfo.value)
    assert "hit:req:0" in message
    assert "phase=commit" in message


def test_serve_sorts_materialized_sequences():
    """A list may arrive unsorted; outcomes keep the list's order."""
    from repro.core.task import HITTask, TaskParameters
    from repro.dragoon import TaskArrival

    def task():
        parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
        return HITTask(parameters, ["q%d" % i for i in range(10)],
                       [0, 1, 2], [0, 0, 0], [0] * 10)

    good, bad = [0] * 10, [1] * 10
    arrivals = [
        TaskArrival(3, "second", task(), [good, bad]),
        TaskArrival(0, "first", task(), [good, good]),
    ]
    outcomes = Dragoon().serve(arrivals)
    assert [outcome.requester.label for outcome in outcomes] == [
        "second", "first",
    ]
    assert all(outcome.contract.is_finalized() for outcome in outcomes)


# ---------------------------------------------------------------------------
# Scenario runs: reproducibility and invariants
# ---------------------------------------------------------------------------


def test_seeded_scenario_is_byte_for_byte_reproducible():
    first = run_scenario(tiny("poisson")).to_json()
    second = run_scenario(tiny("poisson")).to_json()
    assert first == second
    assert run_scenario(tiny("poisson", seed=4)).to_json() != first


@pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
def test_preset_invariants(name):
    report = run_scenario(tiny(name))
    report.check_invariants()
    assert report.tasks_published > 0
    assert report.tasks_settled + report.tasks_cancelled == report.tasks_published
    assert report.total_transactions > 0
    # Settled coins actually reached worker accounts.
    assert sum(report.worker_earnings.values()) > 0


def test_adversarial_scenario_records_extras_and_drops():
    report = run_scenario(tiny("adversarial", tasks=10))
    report.check_invariants()
    assert report.dropped_steps > 0  # dropouts refused their reveals
    assert "late-reveal" in report.gas_extras  # stragglers burned gas


def test_closed_loop_scenario_republishes_to_its_cap():
    report = run_scenario(tiny("closed-loop", tasks=8))
    report.check_invariants()
    assert report.tasks_published == 8


def test_pruning_does_not_change_the_economics():
    pruned = run_scenario(tiny("poisson", tasks=8, prune_every=4))
    unpruned = run_scenario(tiny("poisson", tasks=8, prune_every=0))
    assert pruned.events_pruned > 0
    assert unpruned.events_pruned == 0
    assert pruned.tasks_settled == unpruned.tasks_settled
    assert pruned.total_gas == unpruned.total_gas
    assert pruned.worker_earnings == unpruned.worker_earnings
    assert pruned.commit_to_finalize == unpruned.commit_to_finalize


def test_aggressive_pruning_survives_late_enrollment():
    """A tiny population frees up long after tasks publish; enrollment
    must not depend on pruned 'published' log records (agents discover
    from the event they already hold)."""
    scenario = tiny(
        "poisson",
        seed=2,
        tasks=12,
        population=PopulationSpec(size=3, accuracy=("uniform", 0.80, 0.98)),
        prune_every=1,
    )
    report = run_scenario(scenario)
    report.check_invariants()
    assert report.events_pruned > 0
    assert report.tasks_settled + report.tasks_cancelled == 12


def test_report_transaction_count_includes_deployment_blocks():
    run = run_scenario(tiny("poisson", tasks=5), keep_objects=True)
    on_chain = sum(
        len(block.transactions) for block in run.dragoon.chain.blocks
    )
    assert run.report.total_transactions == on_chain


def test_hopeless_population_declines_and_tasks_cancel():
    """Rational choice: agents whose expected utility is negative never
    enroll, so unfilled tasks fall back to the requester's timeout."""
    scenario = tiny(
        "poisson",
        tasks=3,
        population=PopulationSpec(size=6, accuracy=("point", 0.15)),
        cancel_after=4,
    )
    report = run_scenario(scenario)
    report.check_invariants()
    assert report.enrollments == 0
    assert report.declined_enrollments > 0
    assert report.tasks_cancelled == report.tasks_published
    assert sum(report.worker_earnings.values()) == 0


def test_simulation_run_exposes_live_objects():
    run = run_scenario(tiny("poisson", tasks=4), keep_objects=True)
    run.report.check_invariants()
    assert run.dragoon.engine.all_done
    assert len(run.sessions) == run.report.tasks_published
    # The population's ledger view agrees with the metrics pipeline's.
    assert sum(run.population.earnings().values()) == sum(
        run.report.worker_earnings.values()
    )


def test_scenario_template_controls_task_shape():
    scenario = tiny(
        "burst",
        tasks=4,
        task=TaskTemplate(num_questions=6, num_golds=2,
                          quality_threshold=2, num_workers=2, budget=80),
    )
    run = run_scenario(scenario, keep_objects=True)
    run.report.check_invariants()
    any_task = next(iter(run.dragoon.tasks.values())).requester.task
    assert any_task.parameters.num_questions == 6
    assert any_task.parameters.reward_per_worker == 40
