"""Byte-level WAL fuzz: recovery never loads a wrong state.

The WAL's crash contract (module docstring of
:mod:`repro.store.blockstore`): replay applies every *intact* record and
stops cleanly at the first torn or corrupted one.  This test makes the
contract exhaustive rather than anecdotal — the log of a small run is
truncated at **every** byte offset and corrupted at **every** byte
offset, and each damaged variant must land in exactly one of two
outcomes:

* a loud :class:`~repro.store.blockstore.StoreError` (unrecognizable
  file, broken magic, schema violation surfaced by a decoded-but-wrong
  record), or
* a clean load whose ``state_root`` equals one of the **prefix** states
  of the original run (snapshot + the first *k* records, for some k).

Anything else — a load that succeeds with a root outside the prefix set
— would be silent corruption, the one outcome recovery must never
produce.
"""

from __future__ import annotations

import os

import pytest

from repro.chain.chain import Chain
from repro.chain.transactions import scoped_tx_nonces
from repro.crypto.rng import deterministic_entropy
from repro.store import NodeStore, codec
from repro.store.blockstore import WAL_MAGIC, StoreError
from repro.store.nodestore import WAL_NAME


@pytest.fixture(scope="module")
def walled_node(tmp_path_factory):
    """A state dir whose WAL holds a few small block records, plus the
    state roots of every replay prefix (0..N records)."""
    state_dir = str(tmp_path_factory.mktemp("wal-fuzz") / "node")
    with scoped_tx_nonces(), deterministic_entropy(42):
        chain = Chain()
        store = NodeStore.init(state_dir, chain=chain)
        chain.attach_store(store)
        chain.register_account("alice", 100)
        chain.mine_block()
        chain.register_account("bob", 55)
        chain.ledger.mint(chain.registry.grant("alice"), 7, memo="fuzz")
        chain.mine_block()
        chain.mine_block()  # an empty block: time passes without traffic
        store.wal.close()

    wal_path = os.path.join(state_dir, WAL_NAME)
    with open(wal_path, "rb") as handle:
        original = handle.read()

    # Prefix roots: replay 0, 1, ... N records on top of the snapshot.
    records = list(NodeStore.open(state_dir).wal.records())
    assert len(records) == 3, "fixture drifted: expected one WAL record per block"
    prefix_roots = set()
    for keep in range(len(records) + 1):
        from repro.store.blockstore import apply_record, load_snapshot

        manifest = NodeStore.open(state_dir).manifest()
        prefix_chain, _ = load_snapshot(
            os.path.join(state_dir, manifest["snapshot"])
        )
        for record in records[:keep]:
            apply_record(prefix_chain, record)
        prefix_roots.add(codec.state_root(prefix_chain))
    assert len(prefix_roots) == len(records) + 1, (
        "every prefix must be distinguishable for the fuzz to mean anything"
    )
    return state_dir, wal_path, original, prefix_roots


def _load_outcome(state_dir: str, prefix_roots: set) -> str:
    """Load the (damaged) state dir; classify the outcome."""
    try:
        chain, _ = NodeStore.open(state_dir).load()
    except StoreError:
        return "refused"
    root = codec.state_root(chain)
    assert root in prefix_roots, (
        "recovery produced a state that is no prefix of the original run"
    )
    return "prefix"


def test_truncation_at_every_offset_recovers_a_prefix_or_refuses(walled_node):
    state_dir, wal_path, original, prefix_roots = walled_node
    outcomes = {"refused": 0, "prefix": 0}
    for cut in range(len(original) + 1):
        with open(wal_path, "wb") as handle:
            handle.write(original[:cut])
        outcomes[_load_outcome(state_dir, prefix_roots)] += 1
    with open(wal_path, "wb") as handle:
        handle.write(original)
    # Both documented behaviours genuinely occur: a cut *inside* the
    # magic is refused (cut 0 is a legitimately empty WAL); anything
    # past it replays the intact records and drops the torn tail.
    assert outcomes["refused"] == len(WAL_MAGIC) - 1
    assert outcomes["prefix"] == len(original) + 2 - len(WAL_MAGIC)


def test_corruption_at_every_offset_never_loads_a_wrong_state(walled_node):
    state_dir, wal_path, original, prefix_roots = walled_node
    outcomes = {"refused": 0, "prefix": 0}
    for offset in range(len(original)):
        damaged = bytearray(original)
        damaged[offset] ^= 0xFF
        with open(wal_path, "wb") as handle:
            handle.write(bytes(damaged))
        outcomes[_load_outcome(state_dir, prefix_roots)] += 1
    with open(wal_path, "wb") as handle:
        handle.write(original)
    # A flipped magic byte is refused; a flipped record byte (length,
    # checksum, or payload) truncates replay to the records before it.
    assert outcomes["refused"] == len(WAL_MAGIC)
    assert outcomes["prefix"] == len(original) - len(WAL_MAGIC)


def test_full_log_still_replays_to_the_final_state(walled_node):
    """The fixture's undamaged WAL reaches the run's own final root."""
    state_dir, wal_path, original, prefix_roots = walled_node
    with open(wal_path, "wb") as handle:
        handle.write(original)
    chain, meta = NodeStore.open(state_dir).load()
    assert meta["replayed"] == 3
    assert codec.state_root(chain) in prefix_roots
    assert chain.height == 3
    assert chain.ledger.balance_of(chain.registry.grant("alice")) == 107


def test_append_after_a_torn_tail_truncates_first(walled_node, tmp_path):
    """The writer side of the same contract: appending to a WAL whose
    tail is torn cuts the tear away so later records stay reachable."""
    import shutil

    state_dir, wal_path, original, _ = walled_node
    with open(wal_path, "wb") as handle:
        handle.write(original)
    damaged_dir = str(tmp_path / "damaged")
    shutil.copytree(state_dir, damaged_dir)
    damaged_wal = os.path.join(damaged_dir, WAL_NAME)
    with open(damaged_wal, "ab") as handle:
        handle.write(b"\x00\x00\x01\x00TORN")  # half an append
    store = NodeStore.open(damaged_dir)
    assert len(store.wal) == 3  # the tear hides nothing before it
    store.wal.append({"kind": "prune", "schema": codec.SCHEMA_VERSION,
                      "event_base": 0})
    store.wal.close()
    assert len(list(store.wal.records())) == 4  # tear gone, append intact
