"""The Merkle state trie: structure, proofs, sync, headers, determinism.

Three contracts are pinned here:

* **Canonical structure** — the trie root is a pure function of the
  key/value set: any insertion/deletion order, incremental or from
  scratch, reaches the same bytes (hypothesis-fuzzed against a dict
  model).
* **Proof soundness** — every present key proves membership, every
  absent key proves non-membership, and the adversarial suite (forged
  values, truncated/reordered/mistyped steps, stale roots, wrong-leaf
  terminations) is rejected by :func:`repro.store.trie.verify_proof`
  with a loud :class:`~repro.store.trie.ProofError`, never a silent
  ``False``-that-looks-fine.
* **The determinism contract** — the trie-backed ``state_root`` is
  byte-identical to a golden vector for the seeded scenario, across
  pickle round-trips (checkpoint/resume rebuilds the tracker), and
  between incremental tracking and a cold rebuild of the same chain.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chain.chain import Chain
from repro.chain.contract import CallContext, Contract
from repro.chain.transactions import scoped_tx_nonces
from repro.core.protocol import run_hit
from repro.crypto.keccak import keccak256
from repro.crypto.rng import deterministic_entropy
from repro.store import codec, trie
from repro.store.trie import (
    EMPTY_ROOT,
    MerkleTrie,
    ProofError,
    chain_state_trie,
    verify_proof,
)
from tests.helpers import small_task

#: ``state_root`` of the seeded two-worker HIT below, pinned as bytes.
#: Moves only on a deliberate trie/codec schema change.
GOLDEN_SEEDED_ROOT = (
    "a0c939d245d88d8171b0f5e06364e236bde82c63a8ad83f711c9e18d902bf0b3"
)


def seeded_outcome():
    with scoped_tx_nonces(), deterministic_entropy(7):
        return run_hit(small_task(), [[0] * 10, [1] * 10])


# ---------------------------------------------------------------------------
# Trie structure
# ---------------------------------------------------------------------------


def test_empty_trie_root_is_the_empty_marker():
    assert MerkleTrie().root() == EMPTY_ROOT


def test_root_is_insertion_order_independent():
    items = {b"k%d" % index: b"v%d" % index for index in range(64)}
    forward, backward = MerkleTrie(), MerkleTrie()
    for key in sorted(items):
        forward.set(key, items[key])
    for key in sorted(items, reverse=True):
        backward.set(key, items[key])
    assert forward.root() == backward.root()


def test_delete_restores_the_prior_root():
    t = MerkleTrie()
    t.set(b"a", b"1")
    t.set(b"b", b"2")
    before = t.root()
    t.set(b"c", b"3")
    assert t.root() != before
    assert t.delete(b"c")
    assert t.root() == before
    assert not t.delete(b"c")  # already gone
    assert t.delete(b"a") and t.delete(b"b")
    assert t.root() == EMPTY_ROOT and len(t) == 0


def test_update_in_place_changes_root_and_get():
    t = MerkleTrie()
    t.set(b"key", b"old")
    old_root = t.root()
    t.set(b"key", b"new")
    assert t.get(b"key") == b"new"
    assert t.root() != old_root
    t.set(b"key", b"old")
    assert t.root() == old_root


def test_incremental_updates_rehash_only_the_dirty_path():
    t = MerkleTrie()
    for index in range(256):
        t.set(b"key-%d" % index, b"value")
    t.root()
    before = t.hash_computes
    t.set(b"key-17", b"changed")
    t.root()
    # One leaf plus its root path: logarithmic, nowhere near the 511
    # nodes a full rehash would touch.
    assert 0 < t.hash_computes - before < 40


# ---------------------------------------------------------------------------
# Proofs: honest and adversarial
# ---------------------------------------------------------------------------


@pytest.fixture
def small_trie():
    t = MerkleTrie()
    for index in range(20):
        t.set(b"key-%d" % index, b"value-%d" % index)
    return t


def test_membership_proofs_verify(small_trie):
    root = small_trie.root()
    for index in range(20):
        key = b"key-%d" % index
        present, value = verify_proof(root, key, small_trie.prove(key))
        assert present and value == b"value-%d" % index


def test_non_membership_proofs_verify(small_trie):
    root = small_trie.root()
    for key in (b"absent", b"key-20", b""):
        present, value = verify_proof(root, key, small_trie.prove(key))
        assert not present and value is None


def test_empty_trie_proves_non_membership():
    t = MerkleTrie()
    present, value = verify_proof(EMPTY_ROOT, b"anything", t.prove(b"anything"))
    assert not present and value is None
    with pytest.raises(ProofError):
        # The same empty proof against a non-empty root is a forgery.
        verify_proof(keccak256(b"x"), b"anything", t.prove(b"anything"))


def test_forged_value_is_rejected(small_trie):
    root = small_trie.root()
    proof = small_trie.prove(b"key-3")
    proof["value"] = b"forged"
    with pytest.raises(ProofError):
        verify_proof(root, b"key-3", proof)


def test_forged_leaf_digest_is_rejected(small_trie):
    root = small_trie.root()
    proof = small_trie.prove(b"key-3")
    proof["value"] = b"forged"
    proof["leaf_digest"] = keccak256(b"forged")  # self-consistent forgery
    with pytest.raises(ProofError):
        verify_proof(root, b"key-3", proof)


def test_truncated_and_extended_steps_are_rejected(small_trie):
    root = small_trie.root()
    honest = small_trie.prove(b"key-3")
    truncated = dict(honest, steps=honest["steps"][:-1])
    with pytest.raises(ProofError):
        verify_proof(root, b"key-3", truncated)
    extended = dict(
        honest, steps=honest["steps"] + [[255, 0, keccak256(b"pad")]]
    )
    with pytest.raises(ProofError):
        verify_proof(root, b"key-3", extended)


def test_reordered_steps_are_rejected(small_trie):
    root = small_trie.root()
    honest = small_trie.prove(b"key-3")
    if len(honest["steps"]) < 2:
        pytest.skip("trie too shallow to reorder")
    swapped = dict(honest, steps=list(reversed(honest["steps"])))
    with pytest.raises(ProofError):
        verify_proof(root, b"key-3", swapped)


def test_stale_root_is_rejected(small_trie):
    stale_root = small_trie.root()
    proof_then = small_trie.prove(b"key-3")
    small_trie.set(b"key-99", b"late arrival")
    fresh_root = small_trie.root()
    # Old proof against the new root: the state moved on.
    with pytest.raises(ProofError):
        verify_proof(fresh_root, b"key-3", proof_then)
    # New proof against the old root: equally dead.
    with pytest.raises(ProofError):
        verify_proof(stale_root, b"key-3", small_trie.prove(b"key-3"))


def test_proof_for_one_key_does_not_verify_another(small_trie):
    root = small_trie.root()
    proof = small_trie.prove(b"key-3")
    with pytest.raises(ProofError):
        verify_proof(root, b"key-4", proof)


def test_non_membership_for_a_pruned_key(small_trie):
    """A key that *was* present and then deleted (the pruned-event
    shape) proves non-membership against the post-delete root."""
    root_with = small_trie.root()
    assert verify_proof(
        root_with, b"key-7", small_trie.prove(b"key-7")
    ) == (True, b"value-7")
    small_trie.delete(b"key-7")
    root_without = small_trie.root()
    present, value = verify_proof(
        root_without, b"key-7", small_trie.prove(b"key-7")
    )
    assert not present and value is None
    # And the old membership proof does not survive the deletion.
    with pytest.raises(ProofError):
        verify_proof(root_without, b"key-7", small_trie.prove(b"key-8"))


@pytest.mark.parametrize(
    "mangle",
    [
        lambda p: "not a dict",
        lambda p: {},
        lambda p: dict(p, extra=1),
        lambda p: dict(p, steps="zz"),
        lambda p: dict(p, steps=[p["steps"][0][:2]] + p["steps"][1:]),
        lambda p: dict(p, steps=[[True, 0, b"\x00" * 32]] + p["steps"]),
        lambda p: dict(p, steps=[[0, 2, b"\x00" * 32]] + p["steps"]),
        lambda p: dict(p, steps=[[0, 0, b"short"]] + p["steps"]),
        lambda p: dict(p, leaf_path=b"short"),
        lambda p: dict(p, leaf_digest=None),
        lambda p: dict(p, value=7),
    ],
)
def test_malformed_proofs_raise_not_mislead(small_trie, mangle):
    root = small_trie.root()
    proof = small_trie.prove(b"key-3")
    with pytest.raises(ProofError):
        verify_proof(root, b"key-3", mangle(proof))


# ---------------------------------------------------------------------------
# Hypothesis: trie vs dict model
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "delete"]),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=5),
    ),
    max_size=60,
)


@given(ops=_ops)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_incremental_root_matches_scratch_rebuild(ops):
    t = MerkleTrie()
    model = {}
    for kind, key_index, value_index in ops:
        key = b"key-%d" % key_index
        if kind == "set":
            value = b"value-%d" % value_index
            t.set(key, value)
            model[key] = value
        else:
            assert t.delete(key) == (key in model)
            model.pop(key, None)
    rebuilt = MerkleTrie()
    for key, value in model.items():
        rebuilt.set(key, value)
    assert t.root() == rebuilt.root()
    assert len(t) == len(model)
    root = t.root()
    for key, value in model.items():
        assert verify_proof(root, key, t.prove(key)) == (True, value)
    absent = b"never-inserted"
    assert verify_proof(root, absent, t.prove(absent)) == (False, None)


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_chain_states_track_and_prove(seed):
    """Random seeded chain states: the incremental root equals a cold
    recomputation on an equivalent chain, and every namespaced key the
    tracker holds proves against it."""
    import random

    rng = random.Random(seed)
    chain = Chain()
    addresses = [
        chain.register_account("acct-%d" % index, rng.randrange(1000))
        for index in range(rng.randrange(1, 6))
    ]
    for _ in range(rng.randrange(3)):
        source = rng.choice(addresses)
        chain.ledger.transfer(source, rng.choice(addresses), 0)
    tracker = chain_state_trie(chain)
    incremental = tracker.root(chain)
    # A cold tracker over the pickle round-trip of the same chain.
    rebuilt = pickle.loads(pickle.dumps(chain))
    assert chain_state_trie(rebuilt).root(rebuilt) == incremental
    for key in trie.live_items(chain):
        present, _ = verify_proof(
            incremental, key, tracker.prove(chain, key)
        )
        assert present


# ---------------------------------------------------------------------------
# The chain tracker
# ---------------------------------------------------------------------------


class _Vault(Contract):
    code_size = 500

    def stash(self, ctx: CallContext) -> None:
        self._sstore(ctx, "owner", str(ctx.sender))


def test_seeded_scenario_root_matches_golden_vector():
    outcome = seeded_outcome()
    assert codec.state_root(outcome.chain).hex() == GOLDEN_SEEDED_ROOT


def test_tracker_follows_out_of_block_mutations():
    chain = Chain()
    tracker = chain_state_trie(chain)
    genesis_root = tracker.root(chain)
    address = chain.register_account("late", 5)  # blockless mutation
    moved = tracker.root(chain)
    assert moved != genesis_root
    present, value = verify_proof(
        moved, trie.account_key(address), tracker.prove(chain, trie.account_key(address))
    )
    assert present and codec.decode(value) == ("late", 5)


def test_tracker_follows_event_pruning():
    outcome = seeded_outcome()
    chain = outcome.chain
    tracker = chain_state_trie(chain)
    before = tracker.root(chain)
    assert chain.event_log.prune(through=3) > 0
    after = tracker.root(chain)
    assert after != before  # pruned events left the trie, base moved
    # The pruned record's key now proves non-membership...
    present, _ = verify_proof(
        after, trie.event_key(0), tracker.prove(chain, trie.event_key(0))
    )
    assert not present
    # ...and the new prune base is itself provable state.
    present, value = verify_proof(
        after,
        trie.meta_key("event_base"),
        tracker.prove(chain, trie.meta_key("event_base")),
    )
    assert present and codec.decode(value) == chain.event_log.pruned
    # The tracked root still equals a cold rebuild after the prune.
    rebuilt = pickle.loads(pickle.dumps(chain))
    assert chain_state_trie(rebuilt).root(rebuilt) == after


def test_tracker_follows_deployment_revert():
    """A failed deployment deletes its contract mid-stream — the
    live-domain diff must drop the key, not leak a ghost contract."""
    chain = Chain()
    deployer = chain.register_account("deployer", 10)
    tracker = chain_state_trie(chain)
    before = tracker.root(chain)

    class _Bomb(Contract):
        code_size = 100

        def on_deploy(self, ctx: CallContext) -> None:
            ctx.require(False, "no thanks")

    receipt = chain.deploy(_Bomb("bomb"), deployer)
    assert not receipt.succeeded
    after = tracker.root(chain)
    present, _ = verify_proof(
        after, trie.contract_key("bomb"), tracker.prove(chain, trie.contract_key("bomb"))
    )
    assert not present
    rebuilt = pickle.loads(pickle.dumps(chain))
    assert chain_state_trie(rebuilt).root(rebuilt) == after


def test_tracker_sees_in_place_storage_mutation():
    """Encodings are diffed, not object identities: a stored list
    mutated in place (same object, new contents) must move the root."""
    chain = Chain()
    owner = chain.register_account("owner", 10)
    vault = _Vault("vault")
    chain.deploy(vault, owner)
    vault.storage["log"] = [1]
    tracker = chain_state_trie(chain)
    before = tracker.root(chain)
    vault.storage["log"].append(2)  # in place: dict(storage) would alias
    assert tracker.root(chain) != before


def test_tracker_survives_pickle_and_is_not_carried():
    outcome = seeded_outcome()
    chain = outcome.chain
    root = codec.state_root(chain)
    assert chain._state_trie is not None
    clone = pickle.loads(pickle.dumps(chain))
    assert clone._state_trie is None  # rebuilt lazily, never pickled
    assert codec.state_root(clone) == root


def test_repeated_roots_are_cheap_and_stable():
    outcome = seeded_outcome()
    chain = outcome.chain
    tracker = chain_state_trie(chain)
    first = tracker.root(chain)
    hashed = tracker.trie.hash_computes
    for _ in range(5):
        assert tracker.root(chain) == first
    assert tracker.trie.hash_computes == hashed  # pure cache reads


# ---------------------------------------------------------------------------
# Headers
# ---------------------------------------------------------------------------


def test_headers_chain_from_genesis_and_follow_blocks():
    chain = Chain()
    tracker = chain_state_trie(chain)
    tracker.track_headers = True
    anchor = tracker.ensure_header(chain)
    assert anchor.parent == trie.HEADER_GENESIS
    assert anchor.state_root == tracker.root(chain)
    chain.register_account("alice", 10)
    chain.mine_block()
    tip = tracker.ensure_header(chain)
    assert len(tracker.headers) >= 2
    for previous, current in zip(tracker.headers, tracker.headers[1:]):
        assert current.parent == previous.header_hash()
    assert tip.state_root == tracker.root(chain)
    # An unchanged chain mints no new header.
    count = len(tracker.headers)
    assert tracker.ensure_header(chain) == tip
    assert len(tracker.headers) == count


def test_header_data_round_trip_and_validation():
    header = trie.Header(3, b"\x01" * 32, b"\x02" * 32, b"\x03" * 32)
    assert trie.header_from_data(trie.header_to_data(header)) == header
    with pytest.raises(ProofError):
        trie.header_from_data("nope")
    with pytest.raises(ProofError):
        trie.header_from_data({"height": 3})
    with pytest.raises(ProofError):
        trie.header_from_data(
            dict(trie.header_to_data(header), height=-1)
        )
    with pytest.raises(ProofError):
        trie.header_from_data(
            dict(trie.header_to_data(header), parent=b"short")
        )


# ---------------------------------------------------------------------------
# Snapshot envelope (schema v2)
# ---------------------------------------------------------------------------


def test_snapshot_carries_trie_root_and_encoding_hash(tmp_path):
    from repro.store import load_snapshot, save_snapshot

    outcome = seeded_outcome()
    path = str(tmp_path / "snap.bin")
    root = save_snapshot(path, outcome.chain)
    assert root == codec.state_root(outcome.chain)
    restored, meta = load_snapshot(path)
    assert meta["state_root"] == root
    assert codec.state_root(restored) == root


def test_snapshot_corruption_is_refused(tmp_path):
    from repro.store import StoreError, save_snapshot, load_snapshot

    outcome = seeded_outcome()
    path = str(tmp_path / "snap.bin")
    save_snapshot(path, outcome.chain)
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF  # flip one byte of the embedded state encoding
    open(path, "wb").write(bytes(blob))
    with pytest.raises(StoreError):
        load_snapshot(path)
