"""The BN-128 pairing: G2 membership, bilinearity, non-degeneracy.

Pairings are the slowest primitive (pure Python); these tests compute a
handful and reuse them across assertions.
"""

import pytest

from repro.crypto.curve import G1Point
from repro.crypto.field import CURVE_ORDER
from repro.crypto.g2 import (
    B2,
    G2_GENERATOR,
    g2_mul,
    is_in_g2_subgroup,
    is_on_g2,
    point_add,
    point_mul,
    point_neg,
    validate_g2,
)
from repro.crypto.pairing import pairing, pairing_check
from repro.crypto.tower import FQ12, fq2
from repro.errors import InvalidPoint

G1 = G1Point.generator()


def test_g2_generator_on_twist():
    assert is_on_g2(G2_GENERATOR)


def test_g2_generator_in_subgroup():
    assert is_in_g2_subgroup(G2_GENERATOR)


def test_g2_group_laws():
    double = point_add(G2_GENERATOR, G2_GENERATOR)
    assert double == point_mul(G2_GENERATOR, 2)
    assert point_add(double, point_neg(G2_GENERATOR)) == G2_GENERATOR
    assert point_mul(G2_GENERATOR, CURVE_ORDER) is None


def test_g2_small_multiples():
    p2 = g2_mul(2)
    p3 = g2_mul(3)
    assert point_add(p2, G2_GENERATOR) == p3
    assert is_on_g2(p2) and is_on_g2(p3)


def test_validate_g2_rejects_off_curve():
    bogus = (fq2(1, 1), fq2(2, 2))
    assert not is_on_g2(bogus)
    with pytest.raises(InvalidPoint):
        validate_g2(bogus)


def test_twist_coefficient():
    x, y = G2_GENERATOR
    assert y * y - x * x * x == B2


@pytest.fixture(scope="module")
def base_pairing():
    return pairing(G2_GENERATOR, G1)


def test_pairing_nondegenerate(base_pairing):
    assert base_pairing != FQ12.one()


def test_pairing_has_order_r(base_pairing):
    assert base_pairing**CURVE_ORDER == FQ12.one()


def test_bilinearity_in_g1(base_pairing):
    assert pairing(G2_GENERATOR, G1 * 3) == base_pairing**3


def test_bilinearity_in_g2(base_pairing):
    assert pairing(g2_mul(3), G1) == base_pairing**3


def test_pairing_of_infinity_is_one():
    assert pairing(None, G1) == FQ12.one()
    assert pairing(G2_GENERATOR, G1Point.infinity()) == FQ12.one()


def test_pairing_check_accepts_cancelling_pairs():
    # e(P, Q) * e(-P, Q) == 1
    assert pairing_check([(G1 * 5, G2_GENERATOR), (-(G1 * 5), G2_GENERATOR)])


def test_pairing_check_rejects_unbalanced_pairs():
    assert not pairing_check([(G1, G2_GENERATOR), (G1, G2_GENERATOR)])


def test_pairing_rejects_non_fq2_argument():
    with pytest.raises(InvalidPoint):
        pairing((FQ12.one(), FQ12.one()), G1)
