"""Prime-field arithmetic: axioms (property-based) and helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import (
    CURVE_ORDER,
    FIELD_MODULUS,
    Fq,
    Fr,
    inv_mod,
    make_prime_field,
    sqrt_mod,
)
from repro.errors import CryptoError

elements = st.integers(min_value=0, max_value=FIELD_MODULUS - 1)
nonzero = st.integers(min_value=1, max_value=FIELD_MODULUS - 1)


@given(elements, elements, elements)
def test_field_ring_axioms(a, b, c):
    x, y, z = Fq(a), Fq(b), Fq(c)
    assert x + y == y + x
    assert (x + y) + z == x + (y + z)
    assert x * y == y * x
    assert (x * y) * z == x * (y * z)
    assert x * (y + z) == x * y + x * z


@given(nonzero)
def test_multiplicative_inverse(a):
    x = Fq(a)
    assert x * x.inverse() == Fq(1)
    assert (x / x) == Fq(1)


@given(elements)
def test_additive_inverse(a):
    x = Fq(a)
    assert x + (-x) == Fq(0)
    assert x - x == Fq(0)


@given(elements, st.integers(min_value=0, max_value=50))
def test_pow_matches_repeated_multiplication(a, e):
    x = Fq(a)
    expected = Fq(1)
    for _ in range(e):
        expected = expected * x
    assert x**e == expected


@given(nonzero)
def test_negative_exponent(a):
    x = Fq(a)
    assert x**-1 == x.inverse()
    assert x**-3 == (x * x * x).inverse()


def test_mixed_int_arithmetic():
    assert Fq(5) + 3 == Fq(8)
    assert 3 + Fq(5) == Fq(8)
    assert Fq(5) - 7 == Fq(-2)
    assert 7 - Fq(5) == Fq(2)
    assert Fq(5) * 2 == Fq(10)
    assert 1 / Fq(2) == Fq(2).inverse()


def test_cross_field_mixing_rejected():
    with pytest.raises(CryptoError):
        Fq(1) + Fr(1)


def test_division_by_zero():
    with pytest.raises(ZeroDivisionError):
        Fq(1) / Fq(0)
    with pytest.raises(ZeroDivisionError):
        inv_mod(0, FIELD_MODULUS)


def test_equality_and_hash():
    assert Fq(1) == Fq(1 + FIELD_MODULUS)
    assert Fq(1) == 1
    assert hash(Fq(2)) == hash(Fq(2 + FIELD_MODULUS))
    assert Fq(1) != Fr(1)


def test_bool_and_int_conversion():
    assert not Fq(0)
    assert Fq(3)
    assert int(Fq(3)) == 3


def test_field_cache_returns_same_class():
    assert make_prime_field(FIELD_MODULUS) is make_prime_field(FIELD_MODULUS)
    assert make_prime_field(FIELD_MODULUS) is Fq


@given(nonzero)
@settings(max_examples=25)
def test_sqrt_mod_roundtrip(a):
    square = a * a % FIELD_MODULUS
    root = sqrt_mod(square, FIELD_MODULUS)
    assert root * root % FIELD_MODULUS == square


def test_sqrt_mod_rejects_non_residue():
    # -1 is a non-residue when p % 4 == 3.
    with pytest.raises(CryptoError):
        sqrt_mod(FIELD_MODULUS - 1, FIELD_MODULUS)


def test_sqrt_mod_requires_3_mod_4():
    with pytest.raises(CryptoError):
        sqrt_mod(4, 13)  # 13 % 4 == 1


def test_bn128_constants_are_prime_ish():
    """Fermat sanity checks on the curve constants."""
    assert pow(2, FIELD_MODULUS - 1, FIELD_MODULUS) == 1
    assert pow(2, CURVE_ORDER - 1, CURVE_ORDER) == 1
    assert FIELD_MODULUS % 4 == 3
