"""Unit tests for the C_hit contract (Fig. 4): one behaviour per test.

These drive the contract through the chain directly (no protocol
driver), so each phase rule, rejection path, and payment rule is pinned
down at the transaction level.
"""

import pytest

from repro.chain.chain import Chain
from repro.core.hit_contract import CIPHERTEXT_BYTES
from repro.core.requester import RequesterClient
from repro.core.worker import WorkerClient
from repro.crypto.commitment import commit as make_commitment
from repro.crypto.poqoea import QualityProof
from repro.storage.swarm import SwarmStore

from tests.helpers import small_task


class Harness:
    """A two-worker task plus helpers to step through phases."""

    def __init__(self, task=None):
        self.task = task if task is not None else small_task()
        self.chain = Chain()
        self.swarm = SwarmStore()
        self.requester = RequesterClient("req", self.task, self.chain, self.swarm)
        receipt = self.requester.publish()
        assert receipt.succeeded, receipt.revert_reason
        self.contract = self.chain.contract(self.requester.contract_name)
        self.workers = []

    def add_worker(self, label, answers):
        worker = WorkerClient(label, self.chain, self.swarm, answers=answers)
        worker.discover(self.requester.contract_name)
        self.workers.append(worker)
        return worker

    def last_receipt(self):
        return self.chain.blocks[-1].receipts[-1]

    def commit_all(self):
        for worker in self.workers:
            worker.send_commit()
        return self.chain.mine_block()

    def reveal_all(self):
        for worker in self.workers:
            worker.send_reveal()
        return self.chain.mine_block()


GOOD = [0] * 10  # matches all three golds (answers are all 0)
BAD = [1] * 10  # misses all three golds


def test_publish_freezes_budget():
    h = Harness()
    assert h.chain.ledger.escrow_of(h.contract.address) == 100
    assert h.chain.ledger.balance_of(h.requester.address) == 0


def test_publish_without_funds_fails():
    task = small_task()
    chain = Chain()
    swarm = SwarmStore()
    requester = RequesterClient("poor", task, chain, swarm, balance=10)
    receipt = requester.publish()
    assert not receipt.succeeded
    assert "budget" in receipt.revert_reason


def test_published_event_payload():
    h = Harness()
    events = h.chain.events_named("published")
    assert len(events) == 1
    assert events[0].payload["parameters"].num_questions == 10


def test_commit_happy_path():
    h = Harness()
    h.add_worker("w0", GOOD)
    h.workers[0].send_commit()
    block = h.chain.mine_block()
    assert block.receipts[0].succeeded
    assert h.contract.committed_workers() == [h.workers[0].address]


def test_duplicate_commitment_rejected():
    h = Harness()
    w0 = h.add_worker("w0", GOOD)
    w0.send_commit()
    h.chain.mine_block()
    # Another identity replays the exact same digest.
    copier = h.add_worker("copier", GOOD)
    digest = h.chain.events_named("committed")[0].payload["digest"]
    copier._send_commit_digest(digest)
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded
    assert "duplicate" in block.receipts[0].revert_reason


def test_double_commit_by_same_worker_rejected():
    h = Harness()
    w0 = h.add_worker("w0", GOOD)
    w0.send_commit()
    h.chain.mine_block()
    w0.send_commit()
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded
    assert "already committed" in block.receipts[0].revert_reason


def test_requester_cannot_commit():
    h = Harness()
    commitment, _ = make_commitment(b"x" * 64)
    h.chain.send(
        h.requester.address,
        h.requester.contract_name,
        "commit",
        args=(commitment.digest,),
        payload=commitment.digest,
    )
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded


def test_commit_after_k_filled_rejected():
    h = Harness()
    h.add_worker("w0", GOOD)
    h.add_worker("w1", GOOD)
    h.commit_all()
    late = h.add_worker("late", GOOD)
    late.send_commit()
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded


def test_malformed_commitment_rejected():
    h = Harness()
    w0 = h.add_worker("w0", GOOD)
    h.chain.send(
        w0.address, w0.discovered.contract_name, "commit",
        args=(b"short",), payload=b"short",
    )
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded


def test_reveal_happy_path_stores_hashes():
    h = Harness()
    h.add_worker("w0", GOOD)
    h.add_worker("w1", BAD)
    h.commit_all()
    h.reveal_all()
    key = "cthash:%s:0" % h.workers[0].address.hex()
    assert key in h.contract.storage
    assert len(h.chain.events_named("revealed")) == 2


def test_reveal_with_wrong_opening_rejected():
    h = Harness()
    w0 = h.add_worker("w0", GOOD)
    h.add_worker("w1", GOOD)
    h.commit_all()
    w0.blinding_key = b"\x00" * 32  # destroy the key
    w0.send_reveal()
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded
    assert "opening" in block.receipts[0].revert_reason


def test_reveal_before_all_commits_rejected():
    h = Harness()
    w0 = h.add_worker("w0", GOOD)
    h.add_worker("w1", GOOD)
    w0.send_commit()
    h.chain.mine_block()  # only one of two commits
    w0.send_reveal()
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded


def test_reveal_after_deadline_rejected():
    h = Harness()
    w0 = h.add_worker("w0", GOOD)
    h.add_worker("w1", GOOD)
    h.commit_all()
    h.chain.mine_block()  # burn the reveal window
    h.chain.mine_block()
    w0.send_reveal()
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded


def test_double_reveal_rejected():
    h = Harness()
    w0 = h.add_worker("w0", GOOD)
    h.add_worker("w1", GOOD)
    h.commit_all()
    w0.send_reveal()
    w0.send_reveal()
    block = h.chain.mine_block()
    assert block.receipts[0].succeeded
    assert not block.receipts[1].succeeded


def test_golden_opening_checked():
    h = Harness()
    h.add_worker("w0", GOOD)
    h.add_worker("w1", GOOD)
    h.commit_all()
    h.reveal_all()
    blob = h.task.golden_blob()
    h.chain.send(
        h.requester.address, h.requester.contract_name, "golden",
        args=(blob, b"\x00" * 32), payload=blob,
    )
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded
    assert "opening" in block.receipts[0].revert_reason


def test_golden_only_by_requester():
    h = Harness()
    w0 = h.add_worker("w0", GOOD)
    h.add_worker("w1", GOOD)
    h.commit_all()
    h.reveal_all()
    blob = h.task.golden_blob()
    h.chain.send(
        w0.address, h.requester.contract_name, "golden",
        args=(blob, h.requester._golden_key), payload=blob,
    )
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded


def test_evaluate_rejects_low_quality_with_valid_proof():
    h = Harness()
    h.add_worker("w0", GOOD)
    bad_worker = h.add_worker("w1", BAD)
    h.commit_all()
    h.reveal_all()
    h.requester.evaluate_all()
    h.chain.mine_block()
    assert h.contract.verdict_of(bad_worker.address) == "rejected-quality"


def test_evaluate_with_bogus_proof_pays_worker():
    """Fig. 4: invalid rejection evidence => the worker gets paid."""
    h = Harness()
    h.add_worker("w0", GOOD)
    victim = h.add_worker("w1", GOOD)
    h.commit_all()
    h.reveal_all()
    h.requester.send_golden()
    h.chain.send(
        h.requester.address, h.requester.contract_name, "evaluate",
        args=(victim.address, 0, QualityProof(()), {}), payload=b"\x01" * 50,
    )
    h.chain.mine_block()
    assert h.contract.verdict_of(victim.address) == "paid-evaluate"
    assert h.chain.ledger.balance_of(victim.address) == 50


def test_evaluate_before_golden_rejected():
    h = Harness()
    h.add_worker("w0", GOOD)
    victim = h.add_worker("w1", BAD)
    h.commit_all()
    h.reveal_all()
    h.chain.send(
        h.requester.address, h.requester.contract_name, "evaluate",
        args=(victim.address, 0, QualityProof(()), {}), payload=b"",
    )
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded
    assert "gold standards" in block.receipts[0].revert_reason


def test_evaluate_by_non_requester_rejected():
    h = Harness()
    w0 = h.add_worker("w0", GOOD)
    victim = h.add_worker("w1", BAD)
    h.commit_all()
    h.reveal_all()
    h.requester.send_golden()
    h.chain.send(
        w0.address, h.requester.contract_name, "evaluate",
        args=(victim.address, 0, QualityProof(()), {}), payload=b"",
    )
    block = h.chain.mine_block()
    receipts = {r.transaction.method: r for r in block.receipts}
    assert not receipts["evaluate"].succeeded


def test_outrange_rejects_genuinely_out_of_range():
    h = Harness()
    h.add_worker("w0", GOOD)
    cheat = h.add_worker("w1", [0] * 9 + [7])  # 7 outside (0, 1)
    h.commit_all()
    h.reveal_all()
    actions = h.requester.evaluate_all()
    h.chain.mine_block()
    assert h.contract.verdict_of(cheat.address) == "rejected-outrange"
    assert any(a.kind == "reject-outrange" for a in actions)
    assert len(h.chain.events_named("outranged")) == 1


def test_outrange_false_accusation_pays_worker():
    h = Harness()
    h.add_worker("w0", GOOD)
    honest = h.add_worker("w1", GOOD)
    h.commit_all()
    h.reveal_all()
    h.requester.send_golden()
    # Accuse position 0, which decrypts in-range to 0: per Fig. 4 the
    # claim "a in range" forces payment regardless of the proof.
    submissions = h.requester.collect_submissions()
    vector = submissions[honest.address]
    ciphertexts, _ = h.requester.decrypt_submission(vector)
    from repro.crypto.vpke import prove_decryption

    claim, proof = prove_decryption(
        h.requester.secret_key, ciphertexts[0], h.task.parameters.answer_range
    )
    chunk = vector[:CIPHERTEXT_BYTES]
    h.chain.send(
        h.requester.address, h.requester.contract_name, "outrange",
        args=(honest.address, 0, claim, proof, chunk), payload=chunk,
    )
    h.chain.mine_block()
    assert h.contract.verdict_of(honest.address) == "paid-outrange"


def test_outrange_with_tampered_ciphertext_rejected():
    h = Harness()
    h.add_worker("w0", GOOD)
    victim = h.add_worker("w1", GOOD)
    h.commit_all()
    h.reveal_all()
    h.requester.send_golden()
    from repro.crypto.vpke import prove_decryption

    other = h.requester.public_key.encrypt(5)  # not the worker's ciphertext
    claim, proof = prove_decryption(
        h.requester.secret_key, other, h.task.parameters.answer_range
    )
    h.chain.send(
        h.requester.address, h.requester.contract_name, "outrange",
        args=(victim.address, 0, claim, proof, other.to_bytes()),
        payload=other.to_bytes(),
    )
    block = h.chain.mine_block()
    receipts = {r.transaction.method: r for r in block.receipts}
    assert not receipts["outrange"].succeeded
    assert "does not match" in receipts["outrange"].revert_reason


def test_finalize_pays_unevaluated_and_refunds():
    h = Harness()
    good = h.add_worker("w0", GOOD)
    bad = h.add_worker("w1", BAD)
    h.commit_all()
    h.reveal_all()
    h.requester.evaluate_all()
    h.chain.mine_block()
    h.requester.send_finalize()
    h.chain.mine_block()
    assert h.contract.is_finalized()
    assert h.chain.ledger.balance_of(good.address) == 50
    assert h.chain.ledger.balance_of(bad.address) == 0
    # The rejected worker's share returns to the requester.
    assert h.chain.ledger.balance_of(h.requester.address) == 50
    assert h.chain.ledger.escrow_of(h.contract.address) == 0


def test_finalize_too_early_rejected():
    h = Harness()
    h.add_worker("w0", GOOD)
    h.add_worker("w1", GOOD)
    h.commit_all()
    h.requester.send_finalize()
    block = h.chain.mine_block()
    assert not block.receipts[-1].succeeded


def test_double_finalize_rejected():
    h = Harness()
    h.add_worker("w0", GOOD)
    h.add_worker("w1", GOOD)
    h.commit_all()
    h.reveal_all()
    h.chain.mine_block()
    h.requester.send_finalize()
    h.chain.mine_block()
    h.requester.send_finalize()
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded


def test_silent_requester_pays_everyone():
    """If the requester never opens the golds, all revealed workers win."""
    h = Harness()
    good = h.add_worker("w0", GOOD)
    bad = h.add_worker("w1", BAD)
    h.commit_all()
    h.reveal_all()
    h.chain.mine_block()  # evaluation window passes in silence
    h.requester.send_finalize()
    h.chain.mine_block()
    assert h.chain.ledger.balance_of(good.address) == 50
    assert h.chain.ledger.balance_of(bad.address) == 50
    assert h.chain.ledger.balance_of(h.requester.address) == 0


def test_unrevealed_worker_not_paid():
    h = Harness()
    good = h.add_worker("w0", GOOD)
    ghost = h.add_worker("w1", GOOD)
    h.commit_all()
    good.send_reveal()  # ghost never reveals
    h.chain.mine_block()
    h.chain.mine_block()
    h.requester.send_finalize()
    h.chain.mine_block()
    assert h.chain.ledger.balance_of(good.address) == 50
    assert h.chain.ledger.balance_of(ghost.address) == 0
    assert h.chain.ledger.balance_of(h.requester.address) == 50
