"""PoQoEA: completeness, upper-bound soundness, special zero-knowledge.

This is the paper's central primitive (§V-A, Fig. 3); the soundness
tests encode exactly the attacks the definition rules out — a requester
understating a worker's quality.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.elgamal import keygen
from repro.crypto.poqoea import (
    MismatchEntry,
    QualityProof,
    compute_quality,
    prove_quality,
    sample_gold_standard,
    simulate_quality_proof,
    verify_quality,
)
from repro.crypto.random_oracle import RandomOracle
from repro.errors import ProofError

RANGE = [0, 1]
GOLD_INDEXES = [0, 2, 4]
GOLD_ANSWERS = [1, 1, 0]


@pytest.fixture(scope="module")
def keys():
    return keygen(secret=0xFEEDFACE)


def _encrypt(pk, answers):
    return pk.encrypt_vector(answers)


def test_compute_quality():
    answers = [1, 0, 1, 0, 0, 1]
    assert compute_quality(answers, GOLD_INDEXES, GOLD_ANSWERS) == 3
    assert compute_quality([0, 0, 0, 0, 1, 1], GOLD_INDEXES, GOLD_ANSWERS) == 0


def test_compute_quality_out_of_bounds_index_scores_zero():
    assert compute_quality([1], [5], [1]) == 0


def test_compute_quality_misaligned_golds_rejected():
    with pytest.raises(ValueError):
        compute_quality([1, 0], [0], [1, 1])


@pytest.mark.parametrize(
    "answers,expected_quality,expected_mismatches",
    [
        ([1, 0, 1, 0, 0, 1], 3, 0),  # perfect on golds
        ([1, 0, 1, 0, 1, 1], 2, 1),  # one gold wrong
        ([0, 0, 0, 0, 1, 1], 0, 3),  # all golds wrong
    ],
)
def test_prove_verify_roundtrip(keys, answers, expected_quality, expected_mismatches):
    pk, sk = keys
    ciphertexts = _encrypt(pk, answers)
    quality, proof = prove_quality(sk, ciphertexts, GOLD_INDEXES, GOLD_ANSWERS, RANGE)
    assert quality == expected_quality
    assert len(proof) == expected_mismatches
    assert verify_quality(pk, ciphertexts, quality, proof, GOLD_INDEXES, GOLD_ANSWERS)


def test_upper_bound_soundness_cannot_understate(keys):
    """A requester cannot claim a lower quality than the proof supports."""
    pk, sk = keys
    answers = [1, 0, 1, 0, 1, 1]  # true quality 2, one mismatch
    ciphertexts = _encrypt(pk, answers)
    quality, proof = prove_quality(sk, ciphertexts, GOLD_INDEXES, GOLD_ANSWERS, RANGE)
    assert quality == 2
    # Claiming quality 1 with only one proven mismatch: 1 + 1 < 3 golds.
    assert not verify_quality(pk, ciphertexts, 1, proof, GOLD_INDEXES, GOLD_ANSWERS)
    assert not verify_quality(pk, ciphertexts, 0, proof, GOLD_INDEXES, GOLD_ANSWERS)


def test_overstating_quality_is_allowed_by_design(keys):
    """χ is an upper bound: overstating only hurts the requester."""
    pk, sk = keys
    answers = [1, 0, 1, 0, 1, 1]
    ciphertexts = _encrypt(pk, answers)
    quality, proof = prove_quality(sk, ciphertexts, GOLD_INDEXES, GOLD_ANSWERS, RANGE)
    assert verify_quality(
        pk, ciphertexts, quality + 1, proof, GOLD_INDEXES, GOLD_ANSWERS
    )


def test_replayed_entry_rejected(keys):
    """Duplicating a mismatch entry must not inflate the bound."""
    pk, sk = keys
    answers = [1, 0, 1, 0, 1, 1]  # one genuine mismatch at index 4
    ciphertexts = _encrypt(pk, answers)
    _, proof = prove_quality(sk, ciphertexts, GOLD_INDEXES, GOLD_ANSWERS, RANGE)
    assert len(proof) == 1
    padded = QualityProof(proof.entries * 3)
    assert not verify_quality(pk, ciphertexts, 0, padded, GOLD_INDEXES, GOLD_ANSWERS)


def test_fake_mismatch_on_matching_position_rejected(keys):
    """An entry whose revealed answer equals the gold must be rejected."""
    pk, sk = keys
    answers = [1, 0, 1, 0, 0, 1]  # perfect on golds
    ciphertexts = _encrypt(pk, answers)
    from repro.crypto.vpke import prove_decryption

    claim, dproof = prove_decryption(sk, ciphertexts[0], RANGE)
    assert claim == 1  # matches the gold
    fake = QualityProof((MismatchEntry(0, claim, dproof),))
    assert not verify_quality(pk, ciphertexts, 2, fake, GOLD_INDEXES, GOLD_ANSWERS)


def test_entry_on_non_gold_position_rejected(keys):
    pk, sk = keys
    answers = [1, 1, 1, 1, 0, 1]
    ciphertexts = _encrypt(pk, answers)
    from repro.crypto.vpke import prove_decryption

    claim, dproof = prove_decryption(sk, ciphertexts[1], RANGE)
    rogue = QualityProof((MismatchEntry(1, claim, dproof),))
    assert not verify_quality(pk, ciphertexts, 2, rogue, GOLD_INDEXES, GOLD_ANSWERS)


def test_lying_about_decryption_rejected(keys):
    """Claiming a wrong plaintext for a gold position fails VPKE."""
    pk, sk = keys
    answers = [1, 0, 1, 0, 0, 1]  # gold 0 answered correctly (1)
    ciphertexts = _encrypt(pk, answers)
    from repro.crypto.vpke import prove_decryption

    _, dproof = prove_decryption(sk, ciphertexts[0], RANGE)
    # Claim the answer was 0 (a mismatch) using the honest proof for 1.
    lie = QualityProof((MismatchEntry(0, 0, dproof),))
    assert not verify_quality(pk, ciphertexts, 2, lie, GOLD_INDEXES, GOLD_ANSWERS)


def test_duplicate_gold_indexes_rejected(keys):
    pk, sk = keys
    answers = [1, 0, 1, 0, 0, 1]
    ciphertexts = _encrypt(pk, answers)
    quality, proof = prove_quality(sk, ciphertexts, GOLD_INDEXES, GOLD_ANSWERS, RANGE)
    assert not verify_quality(
        pk, ciphertexts, quality, proof, [0, 0, 4], [1, 1, 0]
    )


def test_gold_index_out_of_vector_rejected(keys):
    pk, sk = keys
    ciphertexts = _encrypt(pk, [1, 0])
    with pytest.raises(ProofError):
        prove_quality(sk, ciphertexts, [5], [1], RANGE)


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=6, max_size=6))
@settings(max_examples=8, deadline=None)
def test_quality_bound_always_tight(answers):
    """For honest proofs, the verified bound equals the true quality."""
    pk, sk = keygen(secret=0x5151)
    ciphertexts = pk.encrypt_vector(answers)
    quality, proof = prove_quality(sk, ciphertexts, GOLD_INDEXES, GOLD_ANSWERS, RANGE)
    assert quality == compute_quality(answers, GOLD_INDEXES, GOLD_ANSWERS)
    assert verify_quality(pk, ciphertexts, quality, proof, GOLD_INDEXES, GOLD_ANSWERS)
    if quality > 0:
        assert not verify_quality(
            pk, ciphertexts, quality - 1, proof, GOLD_INDEXES, GOLD_ANSWERS
        )


def test_special_zero_knowledge_simulator(keys):
    """The PoQoEA simulator forges accepting proofs from public data."""
    pk, _ = keys
    answers = [0, 0, 0, 0, 1, 1]  # all golds wrong
    ciphertexts = _encrypt(pk, answers)
    oracle = RandomOracle()
    quality, forged = simulate_quality_proof(
        pk, ciphertexts, answers, GOLD_INDEXES, GOLD_ANSWERS, oracle
    )
    assert quality == 0
    assert len(forged) == 3
    assert verify_quality(
        pk, ciphertexts, quality, forged, GOLD_INDEXES, GOLD_ANSWERS, oracle=oracle
    )


def test_simulated_proof_rejected_without_programming(keys):
    pk, _ = keys
    answers = [0, 0, 0, 0, 1, 1]
    ciphertexts = _encrypt(pk, answers)
    oracle = RandomOracle()
    quality, forged = simulate_quality_proof(
        pk, ciphertexts, answers, GOLD_INDEXES, GOLD_ANSWERS, oracle
    )
    assert not verify_quality(
        pk, ciphertexts, quality, forged, GOLD_INDEXES, GOLD_ANSWERS,
        oracle=RandomOracle(),
    )


def test_sample_gold_standard_shape():
    indexes, answers = sample_gold_standard(100, 6, [0, 1])
    assert len(indexes) == len(answers) == 6
    assert len(set(indexes)) == 6
    assert all(0 <= i < 100 for i in indexes)
    assert all(a in (0, 1) for a in answers)


def test_sample_gold_standard_too_many_golds():
    with pytest.raises(ValueError):
        sample_gold_standard(3, 5, [0, 1])


def test_proof_serialization_nonempty(keys):
    pk, sk = keys
    answers = [0, 0, 0, 0, 1, 1]
    ciphertexts = _encrypt(pk, answers)
    _, proof = prove_quality(sk, ciphertexts, GOLD_INDEXES, GOLD_ANSWERS, RANGE)
    data = proof.to_bytes()
    assert len(data) == len(proof) * (4 + 33 + 160)
