"""The chain explorer: public-data views and JSON export."""

import json

from repro.chain.explorer import ChainExplorer
from repro.core.protocol import run_hit
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


def _explorer():
    outcome = run_hit(small_task(), [GOOD, BAD])
    return ChainExplorer(outcome.chain), outcome


def test_block_summary_lists_all_blocks():
    explorer, outcome = _explorer()
    text = explorer.block_summary()
    assert "5 blocks" in text
    for number in range(5):
        assert "| %d" % number in text


def test_transaction_log_contains_protocol_calls():
    explorer, outcome = _explorer()
    text = explorer.transaction_log()
    for method in ("commit", "reveal", "golden", "evaluate", "finalize"):
        assert method in text


def test_transaction_log_filter_by_contract():
    explorer, outcome = _explorer()
    name = outcome.requester.contract_name
    assert "commit" in explorer.transaction_log(contract=name)
    assert "commit" not in explorer.transaction_log(contract="ghost")


def test_event_log_filter():
    explorer, _ = _explorer()
    assert "revealed" in explorer.event_log("revealed")
    assert "committed" not in explorer.event_log("revealed")


def test_json_export_roundtrips():
    explorer, _ = _explorer()
    data = json.loads(explorer.to_json())
    assert data["height"] == 5
    assert data["total_gas"] > 0
    assert len(data["blocks"]) == 5
    methods = [
        receipt["method"]
        for block in data["blocks"]
        for receipt in block["receipts"]
    ]
    assert "reveal" in methods


def test_json_blocks_are_linked():
    explorer, _ = _explorer()
    data = explorer.to_dict()
    for previous, block in zip(data["blocks"], data["blocks"][1:]):
        assert block["parent"] == previous["hash"]


def test_gas_spent_by_label():
    explorer, outcome = _explorer()
    assert explorer.gas_spent_by("requester") > 1_000_000
    assert explorer.gas_spent_by("worker-0") > 100_000
    assert explorer.gas_spent_by("nobody") == 0


def test_failed_transactions_empty_on_clean_run():
    explorer, _ = _explorer()
    assert explorer.failed_transactions() == []
