"""The light client: verified facts from an untrusted node.

The trust-minimization contract under test: a client holding **one
32-byte header hash** can verify balances, task phases, and settlement
receipts served by a node it does not trust.  The happy path runs a
real seeded HIT through the RPC stack and verifies its receipt from
headers + proofs alone; the adversarial half wraps the node handle in
tampering proxies and checks that every forgery — values, proof steps,
headers, anchor swaps, withheld hints — dies with a
:class:`~repro.store.trie.ProofError` instead of a wrong answer.

Also pinned here, because the light client is their consumer: the
in-process/RPC parity of the stale-cursor refusal, and the two
"count it, don't swallow it" error counters this PR introduced
(``rpc_listener_errors_total``, ``obs_sampler_errors_total``).
"""

from __future__ import annotations

import gc

import pytest

from repro.errors import ChainError
from repro.ledger.accounts import Address
from repro.lightclient import LightClient
from repro.obs.registry import REGISTRY, render_prometheus
from repro.rpc import LoopbackTransport, RpcChain, RpcNode
from repro.store import codec
from repro.store.trie import Header, ProofError, header_to_data
from tests.rpc.conftest import run_one_hit


@pytest.fixture(scope="module")
def settled_node():
    """One node that ran a full seeded HIT over loopback RPC.

    Task ``hit:alice``; worker-0 answered honestly (paid), worker-1
    answered adversarially (rejected).  Module-scoped: every test here
    reads, none mutates chain state (the cursor test prunes the event
    log, which no other test observes).
    """
    node = RpcNode()
    transport = LoopbackTransport(node)
    run_one_hit(transport)
    return node, transport


@pytest.fixture
def client(settled_node):
    node, transport = settled_node
    return LightClient(RpcChain(transport))


def _worker(settled_node, index: int) -> Address:
    node, _ = settled_node
    return node.chain.registry.lookup("hit:alice/worker-%d" % index)


# ---------------------------------------------------------------------------
# The happy path: verified facts from a real node
# ---------------------------------------------------------------------------


def test_header_chain_syncs_and_matches_the_node_root(settled_node, client):
    node, _ = settled_node
    tip = client.sync()
    assert len(client.headers) >= 2  # anchor + at least one block
    assert tip.state_root == codec.state_root(node.chain)
    # Re-sync is incremental and idempotent.
    assert client.sync() == tip


def test_balance_verifies_against_the_full_node(settled_node, client):
    node, _ = settled_node
    worker = _worker(settled_node, 0)
    assert client.balance_of(worker) == node.chain.ledger.balance_of(worker)


def test_registration_membership_and_absence_both_prove(settled_node, client):
    assert client.registered(_worker(settled_node, 0))
    assert not client.registered(Address.from_label("nobody-ever"))


def test_absent_account_is_an_error_not_a_zero(client):
    with pytest.raises(ProofError):
        client.balance_of(Address.from_label("nobody-ever"))


def test_task_phase_verifies_as_settled(client):
    assert client.task_phase("hit:alice") == 4


def test_settlement_receipt_verifies_for_the_paid_worker(settled_node, client):
    receipt = client.verify_settlement("hit:alice", _worker(settled_node, 0))
    assert receipt["verdict"] == "paid-default"
    assert receipt["amount"] == 50
    entry = client.ledger_entry(receipt["entry_index"])
    assert entry["kind"] == "pay" and entry["amount"] == 50
    assert entry["destination"] == _worker(settled_node, 0)


def test_settlement_receipt_verifies_for_the_rejected_worker(
    settled_node, client
):
    receipt = client.verify_settlement("hit:alice", _worker(settled_node, 1))
    assert receipt["verdict"] == "rejected-quality"
    assert receipt["amount"] == 0
    assert receipt["entry_index"] is None


def test_unknown_worker_has_no_receipt(client):
    with pytest.raises(ProofError):
        client.verify_settlement("hit:alice", Address.from_label("ghost"))


def test_trust_pin_accepts_the_real_anchor_and_rejects_a_fake(
    settled_node, client
):
    _, transport = settled_node
    client.sync()
    anchor = client.headers[0].header_hash()
    pinned = LightClient(RpcChain(transport), trust=anchor)
    pinned.sync()
    assert pinned.headers == client.headers
    wrong = LightClient(RpcChain(transport), trust=b"\xde\xad" * 16)
    with pytest.raises(ProofError):
        wrong.sync()


# ---------------------------------------------------------------------------
# Lying nodes
# ---------------------------------------------------------------------------


class _Tampering:
    """A node handle that forwards everything but lets one test mutate
    one response — the man-in-the-middle / malicious-node stand-in."""

    def __init__(self, inner, mutate_proof=None, payment_hints=None):
        self._inner = inner
        self._mutate_proof = mutate_proof
        self._payment_hints = payment_hints

    def header(self, index=None):
        return self._inner.header(index)

    def get_proof(self, key):
        response = self._inner.get_proof(key)
        if self._mutate_proof is not None:
            response = self._mutate_proof(response)
        return response

    def payment_indexes(self, address):
        if self._payment_hints is not None:
            return self._payment_hints
        return self._inner.payment_indexes(address)


def _lying_client(settled_node, **tamper) -> LightClient:
    _, transport = settled_node
    return LightClient(_Tampering(RpcChain(transport), **tamper))


def test_forged_balance_value_is_rejected(settled_node):
    worker = _worker(settled_node, 0)

    def inflate(response):
        response["proof"]["value"] = codec.encode(("worker", 10**9))
        return response

    client = _lying_client(settled_node, mutate_proof=inflate)
    with pytest.raises(ProofError):
        client.balance_of(worker)


def test_truncated_proof_is_rejected(settled_node):
    def truncate(response):
        response["proof"]["steps"] = response["proof"]["steps"][:-1]
        return response

    client = _lying_client(settled_node, mutate_proof=truncate)
    with pytest.raises(ProofError):
        client.balance_of(_worker(settled_node, 0))


def test_invented_header_is_rejected(settled_node):
    """A proof that folds correctly — but to a root the node invented
    for this response rather than a link of the verified chain."""
    forged = Header(
        height=99, parent=b"\x01" * 32, block_hash=b"\x02" * 32,
        state_root=b"\x03" * 32,
    )

    def substitute(response):
        response["header"] = header_to_data(forged)
        return response

    client = _lying_client(settled_node, mutate_proof=substitute)
    with pytest.raises(ProofError):
        client.balance_of(_worker(settled_node, 0))


def test_out_of_range_header_index_is_rejected(settled_node):
    def relocate(response):
        response["header_index"] = 10**6
        return response

    client = _lying_client(settled_node, mutate_proof=relocate)
    with pytest.raises(ProofError):
        client.balance_of(_worker(settled_node, 0))


def test_withheld_payment_hints_fail_loudly(settled_node):
    """A node that hides the pay entry's journal position cannot make
    the settlement read as unpaid — verification errors out instead."""
    client = _lying_client(settled_node, payment_hints=[])
    with pytest.raises(ProofError):
        client.verify_settlement("hit:alice", _worker(settled_node, 0))
    # Garbage hints are skipped, not crashed on — and still end loudly.
    client = _lying_client(settled_node, payment_hints=[-3, 10**9, "zero"])
    with pytest.raises(ProofError):
        client.verify_settlement("hit:alice", _worker(settled_node, 0))


def test_client_refuses_a_node_with_a_different_history(settled_node):
    """A client synced to one node detects being re-pointed at a node
    whose commitment timeline diverged — equivocation across fetches."""
    _, transport = settled_node
    client = LightClient(RpcChain(transport))
    client.sync()
    other = RpcNode()
    other_transport = LoopbackTransport(other)
    run_one_hit(other_transport, seed=11, label="bob")
    other_chain = RpcChain(other_transport)
    while other_chain.header()["count"] <= len(client.headers):
        other_chain.mine_block()  # extend B past A's verified tip
    client.node = other_chain
    with pytest.raises(ProofError):
        client.sync()


# ---------------------------------------------------------------------------
# Stale-cursor parity (in-process vs RPC — the eventlog fix)
# ---------------------------------------------------------------------------


def test_stale_cursor_raises_the_same_error_through_both_doors(settled_node):
    node, transport = settled_node
    gc.collect()  # drop dead subscription cursors so the prune can move
    assert node.chain.event_log.prune(through=3) == 3
    with pytest.raises(ChainError) as in_process:
        node.chain.event_log.since(0)
    with pytest.raises(ChainError) as over_rpc:
        RpcChain(transport).rpc.call("chain_events", cursor=0)
    assert str(in_process.value) == str(over_rpc.value)
    assert "precedes the pruned base" in str(in_process.value)
    # A cursor at the base still reads fine through both doors.
    assert node.chain.event_log.since(3) is not None
    assert RpcChain(transport).rpc.call("chain_events", cursor=3)["records"]


# ---------------------------------------------------------------------------
# Loud error counters (the exception-swallowing fixes)
# ---------------------------------------------------------------------------


def test_listener_errors_are_counted_not_fatal():
    node = RpcNode()
    chain = RpcChain(LoopbackTransport(node))

    def bad_listener():
        raise RuntimeError("push pump fell over")

    node.add_write_listener(bad_listener)
    counter = REGISTRY.counter(
        "rpc_listener_errors_total",
        "Write-listener callbacks that raised (push pump faults)",
    )
    before = counter.value()
    block = chain.mine_block()  # the mutating request itself succeeds
    assert block.number == 0 and node.chain.height == 1
    assert counter.value() == before + 1


def test_dead_sampler_is_counted_and_the_scrape_survives():
    family = "test_lightclient_dead_sampler"
    gauge = REGISTRY.gauge(
        family, "a sampler that always raises (test fixture)",
        sampler=lambda: 1 / 0,
    )
    errors = REGISTRY.counter(
        "obs_sampler_errors_total",
        "Scrape-time sampler callbacks that raised (family dropped "
        "from that scrape)",
        labelnames=("family",),
    )
    try:
        before = errors.value(family=family)
        text = render_prometheus()
        # The scrape completed; the dead family contributes its HELP
        # header but no sample line, and the failure is on the record.
        assert "# TYPE %s gauge" % family in text
        assert "\n%s " % family not in text
        assert errors.value(family=family) == before + 1
    finally:
        gauge.set_sampler(None)
