"""Ideal/real correspondence (the observable face of Theorem 1).

Every scenario must produce identical payments and verdict kinds in the
real protocol and in the ideal functionality; confidentiality checks
assert the leakage traces contain no plaintext beyond the golds.
"""

import pytest

from repro.core.simulator import (
    compare_worlds,
    leakage_is_plaintext_free,
    run_ideal_mirror,
)
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10
NEAR = [0, 0, 1] + [0] * 7  # quality 2 (boundary)
BELOW = [0, 1, 1] + [0] * 7  # quality 1


@pytest.mark.parametrize(
    "answers",
    [
        (GOOD, GOOD),
        (BAD, BAD),
        (GOOD, BAD),
        (NEAR, BELOW),
        (BELOW, NEAR),
    ],
    ids=["all-good", "all-bad", "mixed", "boundary", "boundary-swapped"],
)
def test_worlds_indistinguishable(answers):
    comparison = compare_worlds(small_task(), list(answers))
    assert comparison.indistinguishable, comparison.differences


def test_worlds_match_with_silent_requester():
    comparison = compare_worlds(
        small_task(), [BAD, BAD], requester_evaluates=False
    )
    assert comparison.indistinguishable, comparison.differences


def test_worlds_match_with_out_of_range_answer():
    cheat = [0] * 9 + [42]
    comparison = compare_worlds(small_task(), [cheat, GOOD])
    assert comparison.indistinguishable, comparison.differences


def test_three_workers():
    task = small_task(num_workers=3, budget=99)
    comparison = compare_worlds(task, [GOOD, BAD, NEAR])
    assert comparison.indistinguishable, comparison.differences


def test_ideal_mirror_handles_bottom():
    task = small_task()
    outcome = run_ideal_mirror(task, [GOOD, None])
    assert outcome.payments["worker-0"] == 50
    assert outcome.payments["worker-1"] == 0


def test_ideal_mirror_custom_labels():
    task = small_task()
    outcome = run_ideal_mirror(task, [GOOD, BAD], worker_labels=["a", "b"])
    assert set(outcome.payments) == {"a", "b"}


def test_leakage_contains_no_plaintext():
    task = small_task()
    outcome = run_ideal_mirror(task, [GOOD, BAD])
    assert leakage_is_plaintext_free(
        outcome.leakage, [GOOD, BAD], task.gold_indexes
    )


def test_leakage_trace_shape():
    task = small_task()
    outcome = run_ideal_mirror(task, [GOOD, BAD])
    tags = [leak.tag for leak in outcome.leakage]
    assert tags[0] == "publishing"
    assert tags.count("answering") == 2
    assert "evaluated" in tags


def test_payment_totals_match_between_worlds():
    task = small_task()
    comparison = compare_worlds(task, [GOOD, NEAR])
    assert sum(comparison.real_payments.values()) == sum(
        comparison.ideal_payments.values()
    )
