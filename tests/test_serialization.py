"""Byte-encoding helpers used for calldata sizing."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.curve import G1Point
from repro.utils.serialization import (
    bytes_to_int,
    decode_ciphertext,
    decode_point,
    encode_ciphertext,
    encode_point,
    hex_digest,
    int_to_bytes,
)


@given(st.integers(min_value=0, max_value=2**256 - 1))
def test_int_roundtrip(value):
    assert bytes_to_int(int_to_bytes(value)) == value


def test_int_to_bytes_length():
    assert len(int_to_bytes(5)) == 32
    assert len(int_to_bytes(5, 4)) == 4


def test_negative_int_rejected():
    with pytest.raises(ValueError):
        int_to_bytes(-1)


def test_overflow_rejected():
    with pytest.raises(OverflowError):
        int_to_bytes(2**256, 32)


def test_point_roundtrip():
    point = (G1Point.generator() * 99).affine
    assert decode_point(encode_point(point)) == point


def test_infinity_point_roundtrip():
    assert decode_point(encode_point(None)) is None


def test_point_wrong_length():
    with pytest.raises(ValueError):
        decode_point(b"\x00" * 63)


def test_ciphertext_roundtrip():
    g = G1Point.generator()
    pair = ((g * 3).affine, (g * 7).affine)
    assert decode_ciphertext(encode_ciphertext(pair)) == pair


def test_ciphertext_wrong_length():
    with pytest.raises(ValueError):
        decode_ciphertext(b"\x00" * 127)


def test_hex_digest():
    assert hex_digest(b"\xde\xad") == "dead"
