"""The parallel proving/verification pipeline (repro.parallel).

Three contracts are pinned here:

* **Exactness** — chunked MSM and Miller-loop products are the *same
  function* as their serial spellings, not an approximation: pooled
  results equal serial results point-for-point, and every batch
  verifier returns the same boolean with the pool installed as without.
* **Determinism** — proving jobs draw per-job DRBG seeds from the
  parent stream at submission time, so a seeded run is byte-identical
  whether jobs execute inline (``procs=0``) or on 1/2/N processes —
  up through whole staggered-session and simulation runs
  (``state_root`` and report JSON alike).
* **Crash tolerance** — a SIGKILLed worker process costs a clean retry
  or a loud :class:`ProofPoolError`, never a hang; node state is
  untouched either way.
"""

from __future__ import annotations

import os
import pickle
import random

import pytest

from repro.crypto import curve, pairing
from repro.crypto.curve import CURVE_ORDER, G1Point, random_scalar
from repro.crypto.elgamal import keygen
from repro.crypto.g2 import G2_GENERATOR
from repro.crypto.pairing import pairing_check
from repro.crypto.poqoea import (
    prove_quality,
    verify_quality,
    verify_quality_proofs_batch,
)
from repro.crypto.rng import DeterministicStream, deterministic_entropy, entropy
from repro.crypto.schnorr import (
    chaum_pedersen_prove,
    chaum_pedersen_verify_batch,
    schnorr_prove,
    schnorr_verify_batch,
)
from repro.crypto.sigma import run_interactive, verify_transcripts_batch
from repro.crypto.vpke import prove_decryption, verify_decryption_batch
from repro.errors import ProofPoolError
from repro.parallel import ProverPool, VerifierPool
from repro.parallel import jobs as pool_jobs
from repro.parallel.pool import _bit_ranges, _split_even
from repro.store import codec

_G = G1Point.generator()


@pytest.fixture
def verifier_pool():
    pool = VerifierPool(2, job_timeout=120)
    yield pool
    pool.close()


@pytest.fixture
def prover_pool():
    pool = ProverPool(2, job_timeout=120)
    yield pool
    pool.close()


# ---------------------------------------------------------------------------
# Chunking arithmetic
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("max_bits", [1, 2, 7, 254, 256])
@pytest.mark.parametrize("chunks", [1, 2, 3, 8, 300])
def test_bit_ranges_partition_exactly(max_bits, chunks):
    ranges = _bit_ranges(max_bits, chunks)
    assert ranges[0][0] == 0
    assert ranges[-1][1] == max_bits
    for (lo_a, hi_a), (lo_b, hi_b) in zip(ranges, ranges[1:]):
        assert hi_a == lo_b  # contiguous, no gap, no overlap
    assert len(ranges) <= max(1, min(chunks, max_bits))


@pytest.mark.parametrize("count", [0, 1, 5, 8, 17])
@pytest.mark.parametrize("chunks", [1, 2, 4])
def test_split_even_preserves_order(count, chunks):
    items = list(range(count))
    slices = _split_even(items, chunks)
    assert [x for chunk in slices for x in chunk] == items
    if slices:
        assert max(map(len, slices)) - min(map(len, slices)) <= 1


# ---------------------------------------------------------------------------
# Chunked MSM and Miller products are exact
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("procs", [0, 2])
def test_msm_pooled_matches_serial(procs):
    rng = random.Random(0xA11E1)
    points = [_G * rng.randrange(1, CURVE_ORDER) for _ in range(9)]
    scalars = [
        0,  # zero digit in every window
        1,
        CURVE_ORDER - 1,  # all windows saturated
        *[rng.randrange(CURVE_ORDER) for _ in range(6)],
    ]
    serial = curve.msm(points, scalars)
    with VerifierPool(procs, job_timeout=120) as pool:
        assert pool.msm(points, scalars) == serial


def test_msm_all_zero_scalars(verifier_pool):
    points = [_G, _G * 2]
    assert verifier_pool.msm(points, [0, 0]) == G1Point.infinity()


def test_msm_hook_respects_threshold(verifier_pool):
    """Below ``min_msm_terms`` the hook declines and msm() stays serial."""
    small = [_G * 3, _G * 5]
    with verifier_pool.installed():
        assert verifier_pool._msm_hook(small, [7, 11]) is None
        assert curve.msm(small, [7, 11]) == _G * (3 * 7 + 5 * 11)


def test_miller_product_pooled_matches_serial(verifier_pool):
    from repro.baseline.groth16 import _g2_mul

    secret = 0x5E17
    # e(sG, H) * e(-G, sH) == 1: a real pairing identity.
    pairs = [
        (_G * secret, G2_GENERATOR),
        (-_G, _g2_mul(G2_GENERATOR, secret)),
    ]
    assert pairing_check(pairs)
    with verifier_pool.installed():
        assert pairing_check(pairs)
    serial = pairing.multi_pairing(pairs)
    assert verifier_pool.miller_product(pairs) ** pairing._FINAL_EXPONENT == serial


def test_worker_processes_never_inherit_hooks(verifier_pool):
    """A forked worker clears inherited backends before running jobs.

    If it didn't, a pooled MSM would recurse into the pool that owns it
    and deadlock — this pins the initializer's reset.
    """
    with verifier_pool.installed():
        points = [_G * scalar for scalar in range(1, 20)]
        scalars = list(range(1, 20))
        expected = sum(
            (point * scalar for point, scalar in zip(points[1:], scalars[1:])),
            points[0] * scalars[0],
        )
        assert curve.msm(points, scalars) == expected
    assert verifier_pool.jobs_dispatched > 0  # the hook really engaged


# ---------------------------------------------------------------------------
# Every batch verifier: pooled == serial booleans
# ---------------------------------------------------------------------------


def _with_and_without(pool, check):
    serial = check()
    with pool.installed():
        pooled = check()
    assert pooled == serial
    return serial


@pytest.mark.parametrize("tamper", [False, True])
def test_vpke_batch_pooled_equivalence(tamper, keypair, verifier_pool):
    pk, sk = keypair
    rng = random.Random(31 + tamper)
    statements = []
    for _ in range(5):
        message = rng.randrange(2)
        ciphertext = pk.encrypt(message)
        claim, proof = prove_decryption(sk, ciphertext, range(2))
        statements.append((claim, ciphertext, proof))
    if tamper:
        claim, ciphertext, proof = statements[2]
        statements[2] = (1 - claim, ciphertext, proof)
    result = _with_and_without(
        verifier_pool, lambda: verify_decryption_batch(pk, statements)
    )
    assert result is not tamper


@pytest.mark.parametrize("tamper", [False, True])
def test_schnorr_batch_pooled_equivalence(tamper, verifier_pool):
    statements = []
    for _ in range(6):
        secret = random_scalar()
        statements.append((_G * secret, schnorr_prove(secret)))
    if tamper:
        public, proof = statements[0]
        statements[0] = (public + _G, proof)
    result = _with_and_without(
        verifier_pool, lambda: schnorr_verify_batch(statements)
    )
    assert result is not tamper


def test_chaum_pedersen_batch_pooled_equivalence(verifier_pool):
    statements = []
    for _ in range(4):
        secret = random_scalar()
        base_v = _G * random_scalar()
        statements.append(
            (
                _G * secret,
                base_v,
                base_v * secret,
                chaum_pedersen_prove(secret, base_v),
            )
        )
    assert _with_and_without(
        verifier_pool, lambda: chaum_pedersen_verify_batch(statements)
    )


def test_sigma_batch_pooled_equivalence(keypair, verifier_pool):
    pk, sk = keypair
    rng = random.Random(77)
    statements = []
    for _ in range(4):
        message = rng.randrange(2)
        ciphertext = pk.encrypt(message)
        statements.append(
            (message, ciphertext, run_interactive(sk, ciphertext, message))
        )
    assert _with_and_without(
        verifier_pool, lambda: verify_transcripts_batch(pk, statements)
    )


def test_poqoea_batch_pooled_equivalence(keypair, verifier_pool):
    pk, sk = keypair
    gold_indexes, gold_answers = [0, 2, 4], [0, 1, 0]
    statements = []
    for answers in ([0, 1, 1, 0, 0], [1, 0, 0, 1, 1], [0, 0, 1, 1, 0]):
        ciphertexts = pk.encrypt_vector(answers)
        quality, proof = prove_quality(
            sk, ciphertexts, gold_indexes, gold_answers, range(2)
        )
        statements.append((ciphertexts, quality, proof))
    serial = verify_quality_proofs_batch(
        pk, statements, gold_indexes, gold_answers
    )
    with verifier_pool.installed():
        pooled = verify_quality_proofs_batch(
            pk, statements, gold_indexes, gold_answers
        )
    assert pooled == serial
    assert all(serial)
    # Element-wise against the sequential verifier, pool installed.
    with verifier_pool.installed():
        for ciphertexts, quality, proof in statements:
            assert verify_quality(
                pk, ciphertexts, quality, proof, gold_indexes, gold_answers
            )


@pytest.mark.slow
def test_groth16_batch_pooled_equivalence(verifier_pool):
    from repro.baseline.groth16 import prove_system, verify, verify_batch
    from repro.baseline.r1cs import ConstraintSystem, LinearCombination as LC

    def cubic(x, out):
        cs = ConstraintSystem()
        out_var = cs.public_input("out", out)
        x_var = cs.private_witness("x", x)
        x2 = cs.mul(x_var, x_var)
        x3 = cs.mul(x2, x_var)
        cs.enforce(
            LC.of(x3) + LC.of(x_var) + LC.constant(5),
            LC.constant(1),
            LC.of(out_var),
        )
        return cs

    proof_a, public_a, vk = prove_system(cubic(3, 35))
    instances = [(public_a, proof_a)]
    serial = verify_batch(vk, instances)
    with verifier_pool.installed():
        pooled = verify_batch(vk, instances)
        single = verify(vk, public_a, proof_a)
    assert serial and pooled and single


# ---------------------------------------------------------------------------
# Prover pool: pooled proving is byte-identical to inline
# ---------------------------------------------------------------------------


def _pooled_vs_inline(factory):
    with deterministic_entropy(11):
        with ProverPool(0) as pool:
            inline = factory(pool)
    with deterministic_entropy(11):
        with ProverPool(2, job_timeout=120) as pool:
            pooled = factory(pool)
    return inline, pooled


def test_encrypt_vector_pooled_identical(keypair):
    pk, _ = keypair
    inline, pooled = _pooled_vs_inline(
        lambda pool: pool.encrypt_vector(pk, [0, 1, 1, 0])
    )
    assert [c.to_bytes() for c in inline] == [c.to_bytes() for c in pooled]


def test_prove_decryption_pooled_identical(keypair):
    pk, sk = keypair
    with deterministic_entropy(5):
        ciphertext = pk.encrypt(1)

    def factory(pool):
        claim, proof = pool.prove_decryption(sk, ciphertext, range(2))
        return claim, proof.to_bytes()

    inline, pooled = _pooled_vs_inline(factory)
    assert inline == pooled
    assert inline[0] == 1


def test_prove_quality_pooled_identical(keypair):
    pk, sk = keypair
    with deterministic_entropy(5):
        ciphertexts = pk.encrypt_vector([0, 1, 0, 1])

    def factory(pool):
        quality, proof = pool.prove_quality(
            sk, ciphertexts, [0, 1], [0, 0], range(2)
        )
        return quality, codec.encode(proof)

    inline, pooled = _pooled_vs_inline(factory)
    assert inline == pooled
    assert inline[0] == 1  # one gold matches, one mismatches


def test_job_seed_is_fixed_width_draw():
    """Dispatch consumes exactly 32 stream bytes per job, any label.

    That (not the label) is what makes the parent stream position a
    pure function of the dispatch count — the resume-safety invariant.
    """
    def position(state):
        return state["counter"] * 32 + state["offset"]

    with deterministic_entropy(99):
        seed_a = entropy.derive_job_seed(b"encrypt-vector")
        mid = entropy.save_state()
        seed_b = entropy.derive_job_seed(b"prove-quality")  # longer label
        after = entropy.save_state()
    assert position(after) - position(mid) == 32
    assert seed_a != seed_b  # stream moved: distinct jobs, distinct seeds
    with deterministic_entropy(99):
        assert entropy.derive_job_seed(b"encrypt-vector") == seed_a


def test_job_seeds_differ_by_label():
    with deterministic_entropy(7):
        seed_a = entropy.derive_job_seed(b"encrypt-vector")
    with deterministic_entropy(7):
        seed_b = entropy.derive_job_seed(b"prove-vpke")
    assert seed_a != seed_b


# ---------------------------------------------------------------------------
# Crash tolerance: SIGKILL mid-job
# ---------------------------------------------------------------------------


def test_killed_worker_retries_cleanly(tmp_path):
    marker = str(tmp_path / "crash-once")
    with ProverPool(1, job_timeout=120) as pool:
        job = pool._submit(
            pool_jobs.job_crash, codec.encode({"marker": marker}), codec.decode
        )
        assert job.result() == "survived"
        assert pool.retries == 1
        # The rebuilt pool keeps serving real jobs.
        pk, _ = keygen(secret=0xC0FFEE)
        with deterministic_entropy(3):
            assert len(pool.encrypt_vector(pk, [0, 1])) == 2


def test_persistent_crash_raises_proof_pool_error():
    with ProverPool(1, max_retries=1, job_timeout=120) as pool:
        job = pool._submit(pool_jobs.job_crash, codec.encode({"marker": None}))
        with pytest.raises(ProofPoolError, match="worker process died"):
            job.result()
        assert pool.retries == 1
        # Recovery: the executor was rebuilt, not wedged.
        pk, _ = keygen(secret=0xC0FFEE)
        with deterministic_entropy(3):
            assert len(pool.encrypt_vector(pk, [0, 1])) == 2


def test_crash_leaves_chain_state_untouched(tiny_task):
    """The fault-injection acceptance check: a dead worker process can
    fail a *job*, never mutate the node — state_root is byte-identical
    before and after the ProofPoolError."""
    from repro.chain.chain import Chain

    chain = Chain()
    chain.register_account("alice", 100)
    chain.mine_block()
    before = codec.state_root(chain)
    with ProverPool(1, max_retries=0, job_timeout=120) as pool:
        job = pool._submit(pool_jobs.job_crash, codec.encode({"marker": None}))
        with pytest.raises(ProofPoolError):
            job.result()
    assert codec.state_root(chain) == before


# ---------------------------------------------------------------------------
# Pool lifecycle: pickling, reuse, status
# ---------------------------------------------------------------------------


def test_pools_pickle_without_executor(prover_pool, keypair):
    pk, _ = keypair
    with deterministic_entropy(4):
        prover_pool.encrypt_vector(pk, [1, 0])  # executor now live
    clone = pickle.loads(pickle.dumps(prover_pool))
    assert clone._executor is None
    assert clone.procs == prover_pool.procs
    assert clone.jobs_dispatched == prover_pool.jobs_dispatched
    with deterministic_entropy(4):
        assert len(clone.encrypt_vector(pk, [1, 0])) == 2  # lazy rebuild
    clone.close()


def test_pending_job_pickles_as_resolved_value(prover_pool, keypair):
    pk, _ = keypair
    with deterministic_entropy(4):
        job = prover_pool.submit_encrypt_vector(pk, [1, 0])
        expected = [c.to_bytes() for c in job.result()]
    restored = pickle.loads(pickle.dumps(job))
    assert [c.to_bytes() for c in restored.result()] == expected


def test_pool_status_shape(verifier_pool):
    status = verifier_pool.status()
    assert status["kind"] == "verifier"
    assert status["procs"] == 2
    assert status["alive"] is False  # lazy: no job dispatched yet
    assert status["jobs_dispatched"] == 0


def test_worker_cache_warm_from_initializer(verifier_pool):
    infos = verifier_pool.worker_cache_info()
    assert infos  # at least one worker answered
    for info in infos:
        assert info["pid"] != os.getpid()
        assert info["population"] >= 1  # generator table warmed at start


def test_parent_cache_stats_count_hits_and_misses():
    curve.reset_fixed_base_cache_stats()
    base = _G * 0x51A7
    assert base.mul_fixed(3) == base * 3  # first use: miss (table built)
    assert base.mul_fixed(5) == base * 5  # second use: hit
    stats = curve.fixed_base_cache_stats()
    assert stats["misses"] >= 1
    assert stats["hits"] >= 1
    assert stats["population"] >= 1
    assert stats["limit"] >= 1


def test_inline_pool_needs_no_processes():
    with ProverPool(0) as pool:
        pk, _ = keygen(secret=0xFEED)
        with deterministic_entropy(2):
            ciphertexts = pool.encrypt_vector(pk, [0, 1, 1])
        assert len(ciphertexts) == 3
        assert pool._executor is None  # truly inline


def test_negative_procs_rejected():
    with pytest.raises(ValueError):
        ProverPool(-1)


# ---------------------------------------------------------------------------
# End to end: engine handoff, simulation identity, RPC surface
# ---------------------------------------------------------------------------


def _staggered_serve(prover_pool, verifier_pool):
    """Two overlapping sessions through Dragoon.serve; the second task
    arrives while the first is mid-flight, so pooled runs exercise the
    async commit handoff against live block mining."""
    import contextlib

    from repro.chain.transactions import scoped_tx_nonces
    from repro.dragoon import Dragoon, TaskArrival
    from tests.helpers import small_task

    hooks = (
        verifier_pool.installed()
        if verifier_pool is not None
        else contextlib.nullcontext()
    )
    with scoped_tx_nonces(), deterministic_entropy(17), hooks:
        dragoon = Dragoon(prover_pool=prover_pool)
        arrivals = [
            TaskArrival(0, "req-a", small_task(), [[0] * 10, [1] * 10]),
            TaskArrival(2, "req-b", small_task(), [[0] * 10, [0] * 10]),
        ]
        outcomes = dragoon.serve(arrivals)
        paid = [
            worker.was_paid()
            for outcome in outcomes
            for worker in outcome.workers
        ]
        return codec.state_root(dragoon.chain), paid


@pytest.mark.slow
def test_serve_pooled_byte_identical_to_inline():
    """The acceptance check: pools on N processes reproduce the inline
    run bit-for-bit — receipts, gas, and state_root all hash equal."""
    with ProverPool(0) as prover:
        inline_root, inline_paid = _staggered_serve(prover, None)
    with ProverPool(2, job_timeout=300) as prover, VerifierPool(
        2, job_timeout=300
    ) as verifier:
        pooled_root, pooled_paid = _staggered_serve(prover, verifier)
    assert pooled_root == inline_root
    assert pooled_paid == inline_paid
    assert any(inline_paid)


@pytest.mark.slow
def test_simulation_pooled_report_identical():
    from dataclasses import replace

    from repro.sim import preset, run_scenario

    scenario = preset("poisson", seed=3, tasks=3)
    inline = run_scenario(
        replace(scenario, prover_procs=0, verifier_procs=0)
    ).to_json()
    pooled = run_scenario(
        replace(scenario, prover_procs=2, verifier_procs=2)
    ).to_json()
    assert pooled == inline


def test_rpc_node_status_surfaces_pool_telemetry():
    from repro.rpc import LoopbackTransport, RpcChain, RpcNode

    with VerifierPool(1, job_timeout=120) as pool:
        node = RpcNode(verifier_pool=pool)
        chain = RpcChain(LoopbackTransport(node))
        chain.register_account("alice", 10)
        chain.mine_block()  # a write: dispatches under installed() hooks
        status = chain.rpc.call("node_status")
    cache = status["fixed_base_cache"]
    assert set(cache) >= {"hits", "misses", "population", "limit"}
    assert status["verifier_pool"]["kind"] == "verifier"
    assert status["verifier_pool"]["procs"] == 1
    for info in status["worker_caches"]:
        assert info["pid"] != os.getpid()
        assert info["population"] >= 1


def test_rpc_node_status_without_pool_has_no_pool_keys():
    from repro.rpc import LoopbackTransport, RpcChain, RpcNode

    node = RpcNode()
    chain = RpcChain(LoopbackTransport(node))
    status = chain.rpc.call("node_status")
    assert "fixed_base_cache" in status
    assert "verifier_pool" not in status
    assert "worker_caches" not in status
