"""End-to-end protocol runs: fairness outcomes and the gas ledger."""

import pytest

from repro.core.protocol import run_hit
from repro.core.task import make_imagenet_task, make_street_parking_task, sample_worker_answers
from repro.errors import ProtocolError
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


def test_all_workers_accepted():
    task = small_task()
    outcome = run_hit(task, [GOOD, GOOD])
    assert outcome.payments() == {"worker-0": 50, "worker-1": 50}
    assert all(v.startswith("paid") for v in outcome.verdicts().values())


def test_all_workers_rejected():
    task = small_task()
    outcome = run_hit(task, [BAD, BAD])
    assert outcome.payments() == {"worker-0": 0, "worker-1": 0}
    assert outcome.chain.ledger.balance_of(outcome.requester.address) == 100


def test_mixed_outcome():
    task = small_task()
    outcome = run_hit(task, [GOOD, BAD])
    assert outcome.payments() == {"worker-0": 50, "worker-1": 0}
    assert outcome.verdicts()["worker-1"] == "rejected-quality"


def test_boundary_quality_is_paid():
    """A worker exactly at Θ (2 of 3 golds) must be paid."""
    task = small_task()
    boundary = [0, 0, 1] + [0] * 7  # misses gold at index 2 only
    assert task.quality_of(boundary) == 2
    outcome = run_hit(task, [boundary, BAD])
    assert outcome.payments()["worker-0"] == 50


def test_just_below_threshold_rejected():
    task = small_task()
    below = [0, 1, 1] + [0] * 7  # one of three golds
    assert task.quality_of(below) == 1
    outcome = run_hit(task, [below, GOOD])
    assert outcome.payments()["worker-0"] == 0


def test_wrong_answer_count_raises():
    task = small_task()
    with pytest.raises(ProtocolError):
        run_hit(task, [GOOD])


def test_requester_budget_conservation():
    task = small_task()
    outcome = run_hit(task, [GOOD, BAD])
    ledger = outcome.chain.ledger
    total = (
        ledger.balance_of(outcome.requester.address)
        + sum(ledger.balance_of(w.address) for w in outcome.workers)
        + ledger.escrow_of(outcome.contract.address)
    )
    assert total == task.parameters.budget


def test_gas_report_structure():
    task = small_task()
    outcome = run_hit(task, [GOOD, BAD])
    gas = outcome.gas
    assert gas.publish > 1_000_000  # dominated by deployment
    assert gas.submit_cost("worker-0") > 200_000
    assert gas.golden > 21_000
    assert "worker-1" in gas.rejections
    assert gas.finalize > 21_000
    assert gas.total == (
        gas.publish
        + sum(gas.commits.values())
        + sum(gas.reveals.values())
        + gas.golden
        + sum(gas.rejections.values())
        + gas.finalize
    )


def test_reveal_dominates_submit_cost():
    """Per the paper's storage profile, reveal ≫ commit (the reveal
    stores one hash per question and carries all the ciphertexts)."""
    task = small_task()
    outcome = run_hit(task, [GOOD, GOOD])
    assert outcome.gas.reveals["worker-0"] > 3 * outcome.gas.commits["worker-0"]


def test_silent_requester_default_payment():
    task = small_task()
    outcome = run_hit(task, [BAD, BAD], requester_evaluates=False)
    assert outcome.payments() == {"worker-0": 50, "worker-1": 50}
    assert outcome.chain.ledger.balance_of(outcome.requester.address) == 0


def test_custom_worker_labels():
    task = small_task()
    outcome = run_hit(task, [GOOD, GOOD], worker_labels=["alice", "bob"])
    assert set(outcome.payments()) == {"alice", "bob"}


def test_street_parking_scenario():
    task = make_street_parking_task()
    answers = [
        sample_worker_answers(task, 1.0, seed=1),
        sample_worker_answers(task, 0.9, seed=2),
        sample_worker_answers(task, 0.1, seed=3),
    ]
    outcome = run_hit(task, answers)
    payments = outcome.payments()
    assert payments["worker-0"] == 100
    assert payments["worker-2"] == 0


@pytest.mark.slow
def test_imagenet_task_full_run():
    """The paper's §VI experiment at full size (106 questions)."""
    task = make_imagenet_task()
    answers = [
        sample_worker_answers(task, 0.97, seed=1),
        sample_worker_answers(task, 0.92, seed=2),
        sample_worker_answers(task, 0.55, seed=3),
        sample_worker_answers(task, 0.10, seed=4),
    ]
    outcome = run_hit(task, answers)
    qualities = [task.quality_of(a) for a in answers]
    for worker, quality in zip(outcome.workers, qualities):
        paid = outcome.payment_of(worker) > 0
        assert paid == (quality >= task.parameters.quality_threshold)
    # Gas sanity against the paper's Table III orders of magnitude.
    assert 900_000 < outcome.gas.publish < 1_700_000
    for worker in outcome.workers:
        assert 1_800_000 < outcome.gas.submit_cost(worker.label) < 3_600_000


def test_events_expose_no_plaintext():
    """Confidentiality: nothing in the event log reveals raw answers."""
    task = small_task()
    outcome = run_hit(task, [GOOD, GOOD])
    answers_bytes = bytes(GOOD)
    for event in outcome.chain.events:
        assert answers_bytes not in event.data


def test_protocol_finishes_in_five_blocks():
    task = small_task()
    outcome = run_hit(task, [GOOD, GOOD])
    assert outcome.chain.height == 5  # deploy, commit, reveal, evaluate, finalize
