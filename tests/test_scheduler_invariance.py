"""Property: protocol outcomes are invariant under message reordering.

The strongest statement of the paper's network-adversary resistance:
whatever permutation the rushing adversary applies within each block,
the final payment vector is exactly the payment vector of the honest
FIFO execution.  Hypothesis drives random permutations (subject to
Ethereum per-sender nonce ordering, which the mempool enforces).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.chain.network import RushingScheduler
from repro.core.protocol import run_hit
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10
NEAR = [0, 0, 1] + [0] * 7


def _shuffling_scheduler(seed: int) -> RushingScheduler:
    rng = random.Random(seed)

    def strategy(pending):
        shuffled = list(pending)
        rng.shuffle(shuffled)
        return shuffled

    return RushingScheduler(strategy)


BASELINE = run_hit(small_task(), [GOOD, BAD, NEAR][:2])


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=5, deadline=None)
def test_random_reordering_preserves_payments(seed):
    outcome = run_hit(
        small_task(), [GOOD, BAD], scheduler=_shuffling_scheduler(seed)
    )
    assert outcome.payments() == BASELINE.payments()
    assert outcome.verdicts() == BASELINE.verdicts()


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=3, deadline=None)
def test_random_reordering_three_workers(seed):
    task = small_task(num_workers=3, budget=99)
    honest = run_hit(task, [GOOD, BAD, NEAR])
    adversarial = run_hit(
        task, [GOOD, BAD, NEAR], scheduler=_shuffling_scheduler(seed)
    )
    assert adversarial.payments() == honest.payments()


def test_reordering_preserves_total_gas_shape():
    """Gas may shift slightly between identical-role txs but the protocol
    still completes in five blocks under any ordering."""
    outcome = run_hit(
        small_task(), [GOOD, BAD], scheduler=_shuffling_scheduler(7)
    )
    assert outcome.chain.height == 5
    assert outcome.contract.is_finalized()
