"""Property tests for the canonical codec on *randomized* chain states.

``tests/test_store_codec.py`` pins the codec on hand-built values and
one settled HIT chain; these properties push past the hand-built cases:
hypothesis generates arbitrary plain-data values, and whole chain
states — ledgers, registries, contract storage, event logs, clocks —
are grown from a seeded :mod:`repro.crypto.rng` stream.  The invariants
are the two the persistence subsystem stands on:

* ``decode(encode(s)) == s`` — a round trip loses nothing, and
  re-encoding the decoded state reproduces the exact bytes;
* ``state_root`` stability — the root of a restored chain equals the
  root of the original (otherwise snapshots could not be verified).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.chain.chain import Chain
from repro.chain.contract import CallContext, Contract
from repro.chain.transactions import scoped_tx_nonces
from repro.crypto.curve import G1Point
from repro.crypto.elgamal import keygen
from repro.crypto.rng import deterministic_entropy, entropy
from repro.ledger.accounts import Address
from repro.store import codec
from repro.store.codec import decode, encode

# ---------------------------------------------------------------------------
# Value layer: arbitrary plain data round-trips exactly
# ---------------------------------------------------------------------------

_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**140), max_value=2**140)
    | st.floats(allow_nan=False)
    | st.binary(max_size=24)
    | st.text(max_size=24)
)
_keys = (
    st.integers(min_value=-(2**40), max_value=2**40)
    | st.text(max_size=12)
    | st.binary(max_size=12)
)
_plain_values = st.recursive(
    _scalars,
    lambda children: st.lists(children, max_size=4)
    | st.lists(children, max_size=4).map(tuple)
    | st.dictionaries(_keys, children, max_size=4),
    max_leaves=24,
)


@given(value=_plain_values)
@settings(max_examples=200, deadline=None)
def test_any_plain_value_round_trips(value):
    blob = encode(value)
    restored = decode(blob)
    assert restored == value
    assert type(restored) is type(value)
    assert encode(restored) == blob  # re-encoding is a fixed point


@given(value=_plain_values)
@settings(max_examples=100, deadline=None)
def test_encoding_is_deterministic_for_any_value(value):
    assert encode(value) == encode(value)


# ---------------------------------------------------------------------------
# Whole-chain layer: randomized states grown from seeded entropy
# ---------------------------------------------------------------------------


class Junkyard(Contract):
    """A contract whose methods write rng-shaped junk into storage."""

    code_size = 64

    def stash(self, ctx: CallContext) -> None:
        key, value = ctx.args
        self._sstore(ctx, key, value)
        self.emit(ctx, "stashed", payload={"key": key, "from": ctx.sender})


def _random_storage_value(depth: int = 0):
    """One storage value drawn from the seeded entropy stream."""
    choices = 8 if depth < 2 else 6
    kind = entropy.randbelow(choices)
    if kind == 0:
        return entropy.randbelow(2**64) - 2**63
    if kind == 1:
        return entropy.token_bytes(entropy.randbelow(24))
    if kind == 2:
        return "s:" + entropy.token_bytes(8).hex()
    if kind == 3:
        return None if entropy.randbelow(2) else bool(entropy.randbelow(2))
    if kind == 4:
        return Address.from_label("acct-%d" % entropy.randbelow(1000))
    if kind == 5:
        return G1Point.generator() * (1 + entropy.randbelow(2**32))
    if kind == 6:
        return [
            _random_storage_value(depth + 1)
            for _ in range(entropy.randbelow(4))
        ]
    return {
        "k%d" % index: _random_storage_value(depth + 1)
        for index in range(entropy.randbelow(4))
    }


def _random_chain() -> Chain:
    """Grow a chain state from the (already seeded) entropy stream."""
    chain = Chain()
    users = [
        chain.register_account(
            "acct-%d" % index, entropy.randbelow(10_000)
        )
        for index in range(1 + entropy.randbelow(5))
    ]
    public_key, _ = keygen()
    contract = Junkyard("junk-%d" % entropy.randbelow(1000))
    chain.deploy(contract, users[0])
    for _ in range(entropy.randbelow(8)):
        sender = users[entropy.randbelow(len(users))]
        key = "slot-%d" % entropy.randbelow(12)
        value = _random_storage_value()
        if entropy.randbelow(4) == 0:
            # Sprinkle in the typed tags transaction args exercise.
            value = (value, public_key.encrypt(entropy.randbelow(8)))
        chain.send(sender, contract.name, "stash", args=(key, value))
        if entropy.randbelow(2):
            chain.mine_block()
    chain.mine_until_idle()
    for _ in range(entropy.randbelow(3)):
        chain.mine_block()  # trailing empty blocks advance the clock
    if entropy.randbelow(2):
        # Exercise the prune-base offset in the encoded event log.
        chain.subscribe(from_start=True).poll()
        chain.event_log.prune(through=entropy.randbelow(len(chain.event_log) + 1))
    return chain


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_randomized_chain_states_round_trip(seed):
    with scoped_tx_nonces(), deterministic_entropy(seed):
        chain = _random_chain()
    # Junkyard is test-local; register it for the decode side.
    codec.CONTRACT_TYPES.setdefault("Junkyard", Junkyard)
    try:
        blob = codec.encode_chain_state(chain)
        restored = codec.decode_chain_state(blob)
        assert codec.encode_chain_state(restored) == blob
        assert codec.state_root(restored) == codec.state_root(chain)
        # Observable state survives, not just bytes.
        assert restored.height == chain.height
        assert restored.clock.period == chain.clock.period
        assert restored.total_gas == chain.total_gas
        assert restored.event_log.pruned == chain.event_log.pruned
        assert len(restored.event_log) == len(chain.event_log)
        assert restored.ledger.total_supply() == chain.ledger.total_supply()
        for name in chain._contracts:
            assert restored.contract(name).storage == chain.contract(name).storage
    finally:
        codec.CONTRACT_TYPES.pop("Junkyard", None)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_state_root_is_stable_across_re_encoding(seed):
    """Two encodings of one state, taken at different times, agree."""
    with scoped_tx_nonces(), deterministic_entropy(seed):
        chain = _random_chain()
    codec.CONTRACT_TYPES.setdefault("Junkyard", Junkyard)
    try:
        first = codec.state_root(chain)
        roundtripped = codec.decode_chain_state(
            codec.encode_chain_state(chain)
        )
        assert codec.state_root(chain) == first
        assert codec.state_root(roundtripped) == first
    finally:
        codec.CONTRACT_TYPES.pop("Junkyard", None)
