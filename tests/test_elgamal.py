"""Exponential ElGamal: correctness, homomorphism, range behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.curve import G1Point
from repro.crypto.elgamal import Ciphertext, keygen
from repro.errors import DecryptionError, InvalidScalar


@given(st.integers(min_value=0, max_value=16))
@settings(max_examples=15, deadline=None)
def test_encrypt_decrypt_roundtrip(message):
    pk, sk = keygen(secret=12345)
    ciphertext = pk.encrypt(message)
    assert sk.decrypt(ciphertext, range(17)) == message


def test_decrypt_out_of_range_returns_group_element(keypair):
    pk, sk = keypair
    ciphertext = pk.encrypt(99)
    result = sk.decrypt(ciphertext, range(2))
    assert isinstance(result, G1Point)
    assert result == G1Point.generator() * 99


def test_public_key_matches_secret(keypair):
    pk, sk = keypair
    assert pk.h == G1Point.generator() * sk.k


def test_encryption_is_randomized(keypair):
    pk, _ = keypair
    assert pk.encrypt(1) != pk.encrypt(1)


def test_fixed_randomness_is_deterministic(keypair):
    pk, _ = keypair
    assert pk.encrypt(1, randomness=42) == pk.encrypt(1, randomness=42)


def test_negative_message_rejected(keypair):
    pk, _ = keypair
    with pytest.raises(InvalidScalar):
        pk.encrypt(-1)


def test_homomorphic_addition(keypair):
    pk, sk = keypair
    combined = pk.encrypt(3) + pk.encrypt(4)
    assert sk.decrypt(combined, range(10)) == 7


def test_homomorphic_scaling(keypair):
    pk, sk = keypair
    scaled = pk.encrypt(3).scale(5)
    assert sk.decrypt(scaled, range(20)) == 15


def test_rerandomization_preserves_plaintext(keypair):
    pk, sk = keypair
    original = pk.encrypt(2)
    refreshed = pk.rerandomize(original)
    assert refreshed != original
    assert sk.decrypt(refreshed, range(3)) == 2


def test_vector_encryption_roundtrip(keypair):
    pk, sk = keypair
    messages = [0, 1, 1, 0, 1]
    ciphertexts = pk.encrypt_vector(messages)
    assert sk.decrypt_vector(ciphertexts, range(2)) == messages


def test_ciphertext_serialization_roundtrip(keypair):
    pk, _ = keypair
    ciphertext = pk.encrypt(1)
    data = ciphertext.to_bytes()
    assert len(data) == 128
    assert Ciphertext.from_bytes(data) == ciphertext


def test_ciphertext_bad_length_rejected():
    with pytest.raises(ValueError):
        Ciphertext.from_bytes(b"\x00" * 64)


@given(st.integers(min_value=0, max_value=5000))
@settings(max_examples=10, deadline=None)
def test_bsgs_decryption(message):
    pk, sk = keygen(secret=999)
    ciphertext = pk.encrypt(message)
    assert sk.decrypt_bsgs(ciphertext, 5000) == message


def test_bsgs_zero(keypair):
    pk, sk = keypair
    assert sk.decrypt_bsgs(pk.encrypt(0), 100) == 0


def test_bsgs_out_of_bound_raises(keypair):
    pk, sk = keypair
    with pytest.raises(DecryptionError):
        sk.decrypt_bsgs(pk.encrypt(500), 100)


def test_bsgs_on_homomorphic_sum(keypair):
    """The aggregate-statistics use case: decrypt a sum of many answers."""
    pk, sk = keypair
    total = pk.encrypt(0)
    for bit in [1, 0, 1, 1, 1, 0, 1]:
        total = total + pk.encrypt(bit)
    assert sk.decrypt_bsgs(total, 16) == 5


def test_secret_key_range_validation():
    from repro.crypto.elgamal import ElGamalSecretKey
    from repro.crypto.field import CURVE_ORDER

    with pytest.raises(InvalidScalar):
        ElGamalSecretKey(0)
    with pytest.raises(InvalidScalar):
        ElGamalSecretKey(CURVE_ORDER)


def test_public_key_equality_and_hash():
    pk1, _ = keygen(secret=7)
    pk2, _ = keygen(secret=7)
    pk3, _ = keygen(secret=8)
    assert pk1 == pk2
    assert pk1 != pk3
    assert len({pk1, pk2, pk3}) == 2
