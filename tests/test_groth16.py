"""Groth16: completeness, soundness against tampering, statement circuits.

Each verification costs 4 pure-Python pairings (~1 s), so the module
reuses one setup and keeps the number of verifications small.
"""

import pytest

from repro.baseline.circuits import quality_statement_circuit
from repro.baseline.groth16 import Proof, prove, setup, verify
from repro.baseline.qap import QAP
from repro.baseline.r1cs import LC, ConstraintSystem
from repro.crypto.curve import G1Point


def _cubic_system(x=3, out=35):
    cs = ConstraintSystem()
    out_var = cs.public_input("out", out)
    x_var = cs.private_witness("x", x)
    x2 = cs.mul(x_var, x_var)
    x3 = cs.mul(x2, x_var)
    cs.enforce(LC.of(x3) + LC.of(x_var) + LC.constant(5), LC.constant(1),
               LC.of(out_var))
    return cs


@pytest.fixture(scope="module")
def cubic():
    cs = _cubic_system()
    qap = QAP.from_r1cs(cs)
    pk, vk = setup(qap)
    proof = prove(pk, qap, cs.full_assignment())
    return cs, qap, pk, vk, proof


def test_completeness(cubic):
    cs, _, _, vk, proof = cubic
    assert verify(vk, cs.public_values(), proof)


def test_wrong_public_input_rejected(cubic):
    _, _, _, vk, proof = cubic
    assert not verify(vk, [36], proof)


def test_wrong_public_input_count_rejected(cubic):
    _, _, _, vk, proof = cubic
    assert not verify(vk, [35, 1], proof)


def test_tampered_proof_rejected(cubic):
    cs, _, _, vk, proof = cubic
    tampered = Proof(proof.a + G1Point.generator(), proof.b, proof.c)
    assert not verify(vk, cs.public_values(), tampered)


def test_proofs_are_randomized(cubic):
    cs, qap, pk, _, proof = cubic
    second = prove(pk, qap, cs.full_assignment())
    assert second != proof  # fresh (r, s) each time


def test_proof_size_constant(cubic):
    _, _, _, _, proof = cubic
    assert proof.size_bytes() == 256


def test_quality_statement_circuit_proves_and_verifies():
    """The reduced PoQoEA statement under the real SNARK."""
    golds = [1, 0, 1]
    answers = [1, 1, 1]  # matches golds at positions 0 and 2
    cs = quality_statement_circuit(golds, claimed_quality=2,
                                   private_answers=answers)
    assert cs.is_satisfied()
    qap = QAP.from_r1cs(cs)
    pk, vk = setup(qap)
    proof = prove(pk, qap, cs.full_assignment())
    assert verify(vk, cs.public_values(), proof)
    # A different claimed quality is a different public input: rejected.
    wrong_public = list(cs.public_values())
    wrong_public[-1] = 3
    assert not verify(vk, wrong_public, proof)


def test_quality_statement_unsatisfiable_with_wrong_chi():
    golds = [1, 0, 1]
    answers = [0, 0, 0]
    cs = quality_statement_circuit(golds, claimed_quality=3,
                                   private_answers=answers)
    assert not cs.is_satisfied()  # true quality is 1, not 3
