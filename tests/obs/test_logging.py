"""Structured logger contract: human output byte-identical to print()."""

from __future__ import annotations

import json

import pytest

from repro.obs.logging import configure_logging, get_logger


@pytest.fixture(autouse=True)
def restore_logging():
    yield
    configure_logging()  # leave the process in the default human mode


def test_human_mode_matches_print_bytes(capsys):
    configure_logging()
    log = get_logger("test")
    log.info("total gas: %dk" % 42, gas=42000)
    captured = capsys.readouterr()
    assert captured.out == "total gas: 42k\n"  # fields stay out of the text
    assert captured.err == ""


def test_errors_route_to_stderr_with_error_prefix(capsys):
    configure_logging()
    log = get_logger("test")
    log.error("something broke")
    log.error("error: already prefixed")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == (
        "error: something broke\n" "error: already prefixed\n"
    )


def test_json_mode_emits_one_object_per_line(capsys):
    configure_logging(json_mode=True)
    log = get_logger("test")
    log.info("block mined", height=3, root=b"\x01\x02")
    log.warning("slow scrape")
    captured = capsys.readouterr()
    lines = captured.out.splitlines() + captured.err.splitlines()
    records = [json.loads(line) for line in lines]
    assert len(records) == 2
    mined = next(r for r in records if r["event"] == "block mined")
    assert mined["level"] == "info"
    assert mined["logger"] == "repro.test"
    assert mined["fields"] == {"height": 3, "root": "0102"}  # bytes -> hex
    assert "ts" in mined
    for line in lines:
        assert line == json.dumps(json.loads(line), sort_keys=True)


def test_log_level_filters(capsys):
    configure_logging(level="warning")
    log = get_logger("test")
    log.info("invisible")
    log.warning("visible")
    captured = capsys.readouterr()
    assert "invisible" not in captured.out + captured.err
    assert "visible" in captured.err


def test_multiline_tables_survive_verbatim(capsys):
    configure_logging()
    table = "+---+\n| x |\n+---+"
    get_logger("test").info(table)
    assert capsys.readouterr().out == table + "\n"
