"""Unit contract for the metrics registry and its Prometheus rendering."""

from __future__ import annotations

import re

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    render_prometheus,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


def test_counter_counts_and_refuses_to_go_down(registry):
    jobs = registry.counter("jobs_total", "Jobs")
    jobs.inc()
    jobs.inc(4)
    assert jobs.value() == 5
    with pytest.raises(MetricError):
        jobs.inc(-1)


def test_labeled_counter_keeps_series_apart(registry):
    jobs = registry.counter("jobs_total", "Jobs", ("kind",))
    jobs.inc(kind="prover")
    jobs.inc(2, kind="verifier")
    assert jobs.value(kind="prover") == 1
    assert jobs.value(kind="verifier") == 2
    # Labeled families refuse unlabeled increments and unknown labels.
    with pytest.raises(MetricError):
        jobs.inc()
    with pytest.raises(MetricError):
        jobs.inc(flavor="prover")


def test_gauge_moves_both_ways(registry):
    depth = registry.gauge("depth", "Depth")
    depth.set(3)
    depth.inc()
    depth.dec(2)
    assert depth.value() == 2


def test_histogram_buckets_are_cumulative_in_collect(registry):
    latency = registry.histogram("lat_seconds", "Lat", buckets=(0.5, 1.0))
    for value in (0.25, 1.0, 4.0):  # 1.0 lands in the le=1.0 bucket
        latency.observe(value)
    (entry,) = [f for f in registry.collect() if f["name"] == "lat_seconds"]
    (series,) = entry["samples"]
    assert [b["count"] for b in series["buckets"]] == [1, 2, 3]
    assert series["buckets"][-1]["le"] == "+Inf"
    assert series["sum"] == 5.25
    assert series["count"] == 3


def test_histogram_rejects_unsorted_buckets(registry):
    with pytest.raises(MetricError):
        registry.histogram("bad", "Bad", buckets=(1.0, 0.5))
    with pytest.raises(MetricError):
        registry.histogram("dup", "Dup", buckets=(1.0, 1.0))


def test_default_buckets_are_sorted_and_unique():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


# ---------------------------------------------------------------------------
# Registration semantics
# ---------------------------------------------------------------------------


def test_reregistration_returns_the_same_instrument(registry):
    first = registry.counter("hits_total", "Hits")
    second = registry.counter("hits_total", "Hits")
    assert first is second


def test_type_clash_raises(registry):
    registry.counter("thing", "Thing")
    with pytest.raises(MetricError):
        registry.gauge("thing", "Thing")


def test_invalid_names_raise(registry):
    with pytest.raises(MetricError):
        registry.counter("no-dashes", "Bad")
    with pytest.raises(MetricError):
        registry.counter("ok_total", "Bad label", ("no-dashes",))


# ---------------------------------------------------------------------------
# Samplers (scrape-time callbacks) and read()
# ---------------------------------------------------------------------------


def test_sampler_pulls_at_scrape_time(registry):
    box = {"value": 7}
    population = registry.gauge(
        "pop", "Pop", sampler=lambda: box["value"]
    )
    assert registry.read("pop") == 7
    box["value"] = 11
    assert registry.read("pop") == 11
    population.set_sampler(None)
    population.set(1)
    assert registry.read("pop") == 1


def test_labeled_sampler_and_read(registry):
    registry.gauge(
        "procs",
        "Procs",
        ("kind",),
        sampler=lambda: [({"kind": "prover"}, 2), ({"kind": "verifier"}, 4)],
    )
    assert registry.read("procs", {"kind": "verifier"}) == 4
    assert registry.read("procs", {"kind": "unknown"}) is None


def test_dead_sampler_never_fails_the_scrape(registry):
    def boom():
        raise RuntimeError("pool is gone")

    registry.gauge("alive", "Alive", sampler=boom)
    assert registry.read("alive") is None
    assert "alive" in render_prometheus(registry)  # family header survives


def test_read_of_absent_family_is_none(registry):
    assert registry.read("no_such_family") is None


# ---------------------------------------------------------------------------
# Prometheus text exposition (v0.0.4)
# ---------------------------------------------------------------------------


def test_prometheus_text_golden(registry):
    jobs = registry.counter("jobs_total", "Jobs processed", ("kind",))
    jobs.inc(kind="prover")
    jobs.inc(2, kind="verifier")
    depth = registry.gauge("queue_depth", "Queue depth")
    depth.set(3)
    latency = registry.histogram(
        "latency_seconds", "Job latency", buckets=(0.5, 1.0)
    )
    for value in (0.25, 1.0, 4.0):
        latency.observe(value)
    expected = (
        "# HELP jobs_total Jobs processed\n"
        "# TYPE jobs_total counter\n"
        'jobs_total{kind="prover"} 1\n'
        'jobs_total{kind="verifier"} 2\n'
        "# HELP latency_seconds Job latency\n"
        "# TYPE latency_seconds histogram\n"
        'latency_seconds_bucket{le="0.5"} 1\n'
        'latency_seconds_bucket{le="1.0"} 2\n'
        'latency_seconds_bucket{le="+Inf"} 3\n'
        "latency_seconds_sum 5.25\n"
        "latency_seconds_count 3\n"
        "# HELP queue_depth Queue depth\n"
        "# TYPE queue_depth gauge\n"
        "queue_depth 3\n"
    )
    assert render_prometheus(registry) == expected


def test_prometheus_escapes_label_values(registry):
    odd = registry.counter("odd_total", "Odd", ("path",))
    odd.inc(path='a"b\\c\nd')
    body = render_prometheus(registry)
    assert 'odd_total{path="a\\"b\\\\c\\nd"} 1' in body


def test_global_registry_renders_parseable_text():
    # Importing the instrumented layers registers their families; every
    # sample line in the global scrape must match the exposition grammar.
    import repro.chain.chain  # noqa: F401
    import repro.core.session  # noqa: F401
    import repro.crypto.curve  # noqa: F401
    import repro.parallel.pool  # noqa: F401
    import repro.rpc.server  # noqa: F401

    from repro.obs.registry import REGISTRY

    sample = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9][0-9eE.+-]*$|"
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [+-]Inf$|"
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? NaN$"
    )
    for line in render_prometheus(REGISTRY).splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
        else:
            assert sample.match(line), line
