"""The scrape surface: ``GET /metrics`` on both front-ends + ``node_metrics``."""

from __future__ import annotations

import urllib.request

import pytest

from repro.obs.registry import REGISTRY
from repro.rpc import (
    AsyncRpcServer,
    LoopbackTransport,
    RpcAuth,
    RpcHttpServer,
    RpcNode,
    RpcSession,
)
from repro.rpc.server import METRICS_CONTENT_TYPE, READ_METHODS


def scrape(server):
    """GET /metrics next to the server's /rpc endpoint."""
    base = server.url[: -len("/rpc")]
    with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
        return (
            response.status,
            response.headers["Content-Type"],
            response.read().decode("utf-8"),
        )


def families_of(body: str):
    return {
        line.split()[2]
        for line in body.splitlines()
        if line.startswith("# TYPE ")
    }


@pytest.fixture(params=["threaded", "async"])
def server_cls(request):
    return RpcHttpServer if request.param == "threaded" else AsyncRpcServer


def test_metrics_endpoint_serves_prometheus_text(server_cls):
    node = RpcNode()
    with server_cls(node) as server:
        status, content_type, body = scrape(server)
    assert status == 200
    assert content_type == METRICS_CONTENT_TYPE
    families = families_of(body)
    # The acceptance bar: ≥20 distinct families spanning every layer.
    assert len(families) >= 20
    for prefix in ("chain_", "session_", "rpc_", "pool_", "msm_"):
        assert any(name.startswith(prefix) for name in families), prefix
    # Node-bound pool gauges exist because RpcNode owns a VerifierPool.
    assert "verifier_pool_procs" in families


def test_metrics_endpoint_is_auth_exempt(server_cls):
    node = RpcNode(
        auth=RpcAuth(
            admin_tokens=("root-token",), submit_tokens=("sub-token",)
        )
    )
    with server_cls(node) as server:
        status, _content_type, body = scrape(server)  # no token sent
    assert status == 200
    assert "rpc_requests_total" in body


def test_rpc_traffic_moves_the_request_counters():
    node = RpcNode()
    with RpcHttpServer(node) as server:
        session = RpcSession(LoopbackTransport(node))
        labels = {"method": "chain_head"}
        before = REGISTRY.read("rpc_requests_total", labels) or 0
        session.call("chain_head")
        after = REGISTRY.read("rpc_requests_total", labels)
        _status, _ctype, body = scrape(server)
    assert after == before + 1
    assert 'rpc_requests_total{method="chain_head"}' in body


def test_node_metrics_is_a_locked_read_method():
    assert "node_metrics" in READ_METHODS
    node = RpcNode(auth=RpcAuth(admin_tokens=("root-token",)))
    session = RpcSession(LoopbackTransport(node))  # read path needs no token
    snapshot = session.call("node_metrics")
    families = {entry["name"]: entry for entry in snapshot["families"]}
    assert len(families) >= 20
    assert families["rpc_requests_total"]["type"] == "counter"
    histogram = families["rpc_request_seconds"]
    assert histogram["type"] == "histogram"
    for series in histogram["samples"]:
        assert series["buckets"][-1]["le"] == "+Inf"
        assert series["buckets"][-1]["count"] == series["count"]


def test_node_status_reads_cache_stats_from_the_registry():
    node = RpcNode()
    session = RpcSession(LoopbackTransport(node))
    status = session.call("node_status")
    cache = status["fixed_base_cache"]
    assert set(cache) >= {"population", "limit", "hits", "misses"}
    assert cache["population"] == int(
        REGISTRY.read("fixed_base_cache_population")
    )
    assert cache["limit"] == int(REGISTRY.read("fixed_base_cache_limit"))
