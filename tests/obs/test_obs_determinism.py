"""The observability determinism contract.

Tracing and metrics only *observe*: a seeded scenario run with a tracer
installed and the registry scraped mid-flight is byte-identical —
receipts, gas, ``state_root``, report JSON — to the same scenario run
dark.  This holds for in-process runs, pooled runs (where worker spans
cross the process boundary inside the job envelope), and
checkpoint/resume round trips.
"""

from __future__ import annotations

import dataclasses
import json

from repro.obs.registry import REGISTRY, render_prometheus
from repro.obs.tracing import trace_to
from repro.sim.runner import InterruptedRun, resume_scenario, run_scenario
from repro.sim.scenario import preset
from repro.store import NodeStore
from repro.store.codec import state_root


def poisson(seed: int = 11, tasks: int = 3):
    return preset("poisson", seed=seed, tasks=tasks)


def run_fingerprint(scenario, **kwargs):
    """Everything the contract pins: report JSON + chain state root."""
    run = run_scenario(scenario, keep_objects=True, **kwargs)
    return run.report.to_json(), state_root(run.dragoon.chain)


def test_traced_and_scraped_run_is_byte_identical(tmp_path):
    baseline_json, baseline_root = run_fingerprint(poisson())
    with trace_to(str(tmp_path / "run.jsonl")) as tracer:
        traced_json, traced_root = run_fingerprint(poisson())
        # Scraping mid-flight is part of the contract under test.
        scrape = render_prometheus()
        families = REGISTRY.collect()
    assert tracer.spans_written > 0
    assert scrape and families
    assert traced_json == baseline_json
    assert traced_root == baseline_root


def test_trace_file_is_valid_jsonl_of_known_span_names(tmp_path):
    path = tmp_path / "run.jsonl"
    with trace_to(str(path)):
        run_scenario(poisson())
    names = set()
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert record["v"] == 1
        names.add(record["name"])
    # The three layers the runner exercises all show up in one file.
    assert {"engine.step", "chain.mine_block", "session.phase"} <= names


def test_pooled_run_traced_matches_pooled_run_dark(tmp_path):
    scenario = dataclasses.replace(poisson(tasks=2), verifier_procs=1)
    baseline_json, baseline_root = run_fingerprint(scenario)
    with trace_to(str(tmp_path / "pooled.jsonl")):
        traced_json, traced_root = run_fingerprint(scenario)
    assert traced_json == baseline_json
    assert traced_root == baseline_root


def test_checkpoint_resume_round_trip_under_tracing(tmp_path):
    scenario = poisson(seed=5, tasks=4)
    baseline_json, _root = run_fingerprint(scenario)
    store = NodeStore.init(str(tmp_path / "traced-rt"))
    with trace_to(str(tmp_path / "rt.jsonl")):
        marker = run_scenario(
            scenario, store=store, checkpoint_every=2, interrupt_after=4
        )
        assert isinstance(marker, InterruptedRun)
        resumed = resume_scenario(store.state_dir)
    assert resumed.to_json() == baseline_json
