"""Span tracer contract: JSONL schema, parent linkage, pool boundary."""

from __future__ import annotations

import io
import json
import os

from repro.crypto.elgamal import keygen
from repro.crypto.rng import deterministic_entropy
from repro.obs.tracing import (
    SPAN_SCHEMA_VERSION,
    NullTracer,
    Tracer,
    get_tracer,
    trace_to,
)
from repro.parallel.pool import ProverPool
from repro.store import codec

RECORD_KEYS = {"v", "span", "parent", "name", "start", "end", "attrs"}


def make_tracer():
    """A tracer over a StringIO sink with a deterministic tick clock."""
    sink = io.StringIO()
    ticks = iter(float(i) for i in range(1000))
    return Tracer(sink, clock=lambda: next(ticks)), sink


def records_of(sink: io.StringIO):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


# ---------------------------------------------------------------------------
# Schema and nesting
# ---------------------------------------------------------------------------


def test_nested_spans_link_parent_to_child():
    tracer, sink = make_tracer()
    with tracer.span("outer", task="t"):
        with tracer.span("inner"):
            pass
    inner, outer = records_of(sink)  # inner closes (and writes) first
    assert inner["name"] == "inner" and outer["name"] == "outer"
    assert inner["parent"] == outer["span"]
    assert outer["parent"] is None
    assert outer["attrs"] == {"task": "t"}
    for record in (inner, outer):
        assert record["v"] == SPAN_SCHEMA_VERSION
        assert set(record) == RECORD_KEYS
        assert record["end"] >= record["start"]


def test_records_are_one_sorted_json_object_per_line():
    tracer, sink = make_tracer()
    with tracer.span("a", z=1, a=2):
        pass
    (line,) = sink.getvalue().splitlines()
    assert line == json.dumps(json.loads(line), sort_keys=True)


def test_span_ids_are_a_plain_counter():
    tracer, sink = make_tracer()
    for _ in range(3):
        with tracer.span("tick"):
            pass
    assert [r["span"] for r in records_of(sink)] == [1, 2, 3]
    assert tracer.spans_written == 3


def test_exception_stamps_error_attr_and_pops_the_stack():
    tracer, sink = make_tracer()
    try:
        with tracer.span("boom"):
            raise ValueError("x")
    except ValueError:
        pass
    (record,) = records_of(sink)
    assert record["attrs"]["error"] == "ValueError"
    assert tracer.current_span_id() is None


def test_set_updates_attrs_mid_span():
    tracer, sink = make_tracer()
    with tracer.span("step") as span:
        span.set(block=4)
    (record,) = records_of(sink)
    assert record["attrs"] == {"block": 4}


def test_emit_writes_premeasured_spans_with_extra_top_level_keys():
    tracer, sink = make_tracer()
    parent = tracer.emit("pool.job", 1.0, 2.0, attrs={"kind": "prover"})
    tracer.emit(
        "pool.job.worker", 0.1, 0.9, parent=parent,
        attrs={"pid": 1234}, clock="worker",
    )
    submit, worker = records_of(sink)
    assert worker["parent"] == submit["span"]
    assert worker["clock"] == "worker"
    assert "clock" not in submit


def test_current_span_id_tracks_the_implicit_stack():
    tracer, _ = make_tracer()
    assert tracer.current_span_id() is None
    with tracer.span("outer") as outer:
        assert tracer.current_span_id() == outer.id
        with tracer.span("inner") as inner:
            assert tracer.current_span_id() == inner.id
        assert tracer.current_span_id() == outer.id
    assert tracer.current_span_id() is None


# ---------------------------------------------------------------------------
# Installation: the process-global tracer
# ---------------------------------------------------------------------------


def test_default_tracer_is_a_disabled_noop():
    tracer = get_tracer()
    assert isinstance(tracer, NullTracer)
    assert tracer.enabled is False
    with tracer.span("ignored", x=1) as span:
        span.set(y=2)  # absorbs the full surface
    assert tracer.emit("ignored", 0.0, 1.0) is None
    assert tracer.current_span_id() is None


def test_trace_to_installs_writes_and_restores(tmp_path):
    path = tmp_path / "trace.jsonl"
    before = get_tracer()
    with trace_to(str(path)) as tracer:
        assert get_tracer() is tracer
        with tracer.span("only"):
            pass
    assert get_tracer() is before
    (record,) = [json.loads(l) for l in path.read_text().splitlines()]
    assert record["name"] == "only"


# ---------------------------------------------------------------------------
# The process boundary: worker spans ship home through the pool
# ---------------------------------------------------------------------------


def test_worker_spans_cross_the_pool_boundary(tmp_path):
    path = tmp_path / "pool-trace.jsonl"
    public_key, _secret = keygen(secret=0xBEEF)
    with trace_to(str(path)):
        with deterministic_entropy(99):
            with ProverPool(1) as pool:
                job = pool.submit_encrypt_vector(public_key, [0, 1, 1])
                traced_result = job.result()
    spans = [json.loads(l) for l in path.read_text().splitlines()]
    (submit,) = [s for s in spans if s["name"] == "pool.job"]
    (worker,) = [s for s in spans if s["name"] == "pool.job.worker"]
    assert submit["attrs"]["fn"] == "job_encrypt_vector"
    assert submit["attrs"]["kind"] == "prover"
    # Linkage is exact even though the clocks are different domains.
    assert worker["parent"] == submit["span"]
    assert worker["clock"] == "worker"
    assert worker["attrs"]["fn"] == "job_encrypt_vector"
    assert worker["attrs"]["pid"] != os.getpid()

    # Tracing never changes job results: the same seeded dispatch
    # untraced produces byte-identical ciphertexts.
    with deterministic_entropy(99):
        with ProverPool(1) as pool:
            plain_result = pool.submit_encrypt_vector(
                public_key, [0, 1, 1]
            ).result()
    assert codec.encode(plain_result) == codec.encode(traced_result)


def test_inline_pool_jobs_trace_without_an_envelope(tmp_path):
    path = tmp_path / "inline-trace.jsonl"
    public_key, _secret = keygen(secret=0xBEEF)
    with trace_to(str(path)):
        with deterministic_entropy(99):
            with ProverPool(0) as pool:  # procs=0: runs in-process
                pool.submit_encrypt_vector(public_key, [0, 1]).result()
    spans = [json.loads(l) for l in path.read_text().splitlines()]
    inline = [s for s in spans if s["name"] == "pool.job"]
    assert inline and all(s["attrs"].get("inline") for s in inline)
    assert not [s for s in spans if s["name"] == "pool.job.worker"]
