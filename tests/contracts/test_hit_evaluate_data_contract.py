"""Consumer contract tests freezing the HIT *data* shapes.

Where the sibling module pins the callable surface, this one pins the
wire-visible data: receipt fields, event names and payload keys,
gas-breakdown labels, and the storage-key vocabulary — everything a
consumer (client, explorer, analysis table) pattern-matches on.  The
batching refactor must keep emitting byte-for-byte compatible shapes,
which is checked by running the same task through the sequential and
the batched evaluate paths and comparing.
"""

from __future__ import annotations

import pytest

from repro.core.protocol import run_hit
from repro.dragoon import Dragoon
from tests.helpers import small_task

pytestmark = pytest.mark.contract

GOOD = [0] * 10
BAD = [1] * 10  # misses all three golds -> rejected via PoQoEA

#: Every gas label a receipt breakdown may carry.  The analysis layer
#: (and bench_table3's breakdown table) switches on these strings.
GAS_LABELS = {
    "tx-base",
    "calldata",
    "sstore",
    "sload",
    "keccak",
    "log",
    "ecmul",
    "ecadd",
    "pairing",
    "value-transfer",
    "deploy",
}

#: Event name -> the payload keys consumers read.  Extending a payload
#: is backward compatible; removing or renaming a key is a break.
EVENT_PAYLOAD_KEYS = {
    "published": {"requester", "parameters", "pubkey", "commgs", "task_digest"},
    "committed": {"worker", "digest", "count"},
    "all_committed": {"workers", "reveal_deadline"},
    "revealed": {"worker", "ciphertexts"},
    "golden_opened": {"G", "Gs"},
    "evaluated": {"worker", "quality", "verdict"},
    "batch_evaluated": {"batch_size", "rejected", "proofs_verified"},
    "paid": {"worker", "amount", "verdict"},
    "finalized": {"workers"},
}

STORAGE_KEY_PREFIXES = (
    "params",
    "params2",
    "requester",
    "pubkey_x",
    "pubkey_y",
    "commgs",
    "task_digest",
    "phase",
    "comm:",
    "comm_of:",
    "workers",
    "reveal_deadline",
    "cthash:",
    "revealed:",
    "adjudicated:",
    "golden_opened",
    "gold_indexes",
    "gold_answers",
    "finalized",
)


@pytest.fixture(scope="module")
def sequential_outcome():
    return run_hit(small_task(), [GOOD, BAD])


@pytest.fixture(scope="module")
def batched_outcome():
    dragoon = Dragoon()
    (outcome,) = dragoon.run_hits_batch([("req", small_task(), [GOOD, BAD])])
    return outcome


def test_receipt_shape(sequential_outcome):
    receipt = sequential_outcome.receipts[0]
    assert set(vars(receipt)) == {
        "transaction",
        "status",
        "gas_used",
        "gas_breakdown",
        "events",
        "revert_reason",
        "block_number",
    }
    transaction = receipt.transaction
    for field in ("sender", "contract", "method", "payload", "args",
                  "value", "gas_limit", "nonce"):
        assert hasattr(transaction, field), field


@pytest.mark.parametrize("path", ["sequential", "batched"])
def test_gas_breakdown_labels(path, sequential_outcome, batched_outcome, request):
    outcome = sequential_outcome if path == "sequential" else batched_outcome
    receipts = (
        outcome.receipts
        if path == "sequential"
        else [r for b in outcome.chain.blocks for r in b.receipts]
    )
    assert receipts
    for receipt in receipts:
        assert set(receipt.gas_breakdown) <= GAS_LABELS, receipt.transaction.method


@pytest.mark.parametrize("path", ["sequential", "batched"])
def test_event_payload_keys(path, sequential_outcome, batched_outcome):
    outcome = sequential_outcome if path == "sequential" else batched_outcome
    seen_names = set()
    for event in outcome.chain.events:
        assert event.name in EVENT_PAYLOAD_KEYS, event.name
        seen_names.add(event.name)
        if event.payload is not None:
            assert set(event.payload) == EVENT_PAYLOAD_KEYS[event.name], event.name
    # The full life cycle must have emitted the core protocol events.
    core = {"published", "committed", "all_committed", "revealed",
            "golden_opened", "evaluated", "paid", "finalized"}
    assert core <= seen_names
    if path == "batched":
        assert "batch_evaluated" in seen_names


@pytest.mark.parametrize("path", ["sequential", "batched"])
def test_storage_key_vocabulary(path, sequential_outcome, batched_outcome):
    outcome = sequential_outcome if path == "sequential" else batched_outcome
    for key in outcome.contract.storage:
        assert key.startswith(STORAGE_KEY_PREFIXES), key


def test_batched_evaluate_preserves_sequential_semantics(
    sequential_outcome, batched_outcome
):
    """Same task, same answers: verdicts and payments must agree."""
    sequential = {
        worker.label.rsplit("-", 1)[-1]: sequential_outcome.payment_of(worker)
        for worker in sequential_outcome.workers
    }
    batched = {
        worker.label.rsplit("-", 1)[-1]: batched_outcome.payment_of(worker)
        for worker in batched_outcome.workers
    }
    assert sequential == batched
    sequential_verdicts = [
        sequential_outcome.contract.verdict_of(worker.address)
        for worker in sequential_outcome.workers
    ]
    batched_verdicts = [
        batched_outcome.contract.verdict_of(worker.address)
        for worker in batched_outcome.workers
    ]
    assert sequential_verdicts == batched_verdicts


def test_rejection_event_per_rejected_worker(batched_outcome):
    """evaluate_batch still emits one 'evaluated' event per rejection."""
    events = batched_outcome.chain.events_named(
        "evaluated", batched_outcome.contract.name
    )
    assert len(events) == 1
    assert events[0].payload["verdict"] == "rejected"
    (batch_event,) = batched_outcome.chain.events_named(
        "batch_evaluated", batched_outcome.contract.name
    )
    assert batch_event.payload["batch_size"] == 1
    assert batch_event.payload["rejected"] == 1
    assert batch_event.payload["proofs_verified"] == 3
