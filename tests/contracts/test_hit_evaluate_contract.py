"""Provider contract tests freezing the HITContract *interface*.

Per the consumer-driven contract-testing pattern (SNIPPETS 1-2): the
clients (`RequesterClient`, `WorkerClient`, `Dragoon`, the protocol
driver, and the gas analysis layer) are the consumers; `HITContract`
plus the chain's execution model are the provider.  These tests pin the
method surface, callable signatures, and gas-accounting vocabulary the
consumers were written against, so a refactor of the verification
internals (e.g. the batched-evaluate path) cannot silently change the
on-chain interface.

If one of these fails, either revert the interface change or version it
deliberately: update this contract *and* every consumer in the same PR.
"""

from __future__ import annotations

import inspect

import pytest

from repro.chain.contract import CallContext, Contract
from repro.chain.gas import GasMeter
from repro.core.hit_contract import (
    CIPHERTEXT_BYTES,
    HITContract,
    PHASE_COMMIT,
    PHASE_DONE,
    PHASE_EVALUATE,
    PHASE_REVEAL,
)
from repro.core.protocol import GasReport
from repro.errors import ContractError

pytestmark = pytest.mark.contract

#: The dispatchable (transaction-callable) methods of the HIT contract.
#: Adding a method extends the protocol; removing or renaming one breaks
#: every deployed consumer.
EXPECTED_METHODS = {
    "commit",
    "reveal",
    "golden",
    "evaluate",
    "evaluate_batch",
    "outrange",
    "finalize",
    "cancel",
}

#: Gas-free observation helpers the tests/clients read state through.
EXPECTED_VIEWS = {"verdict_of", "committed_workers", "is_finalized"}


def _public_methods(cls) -> set:
    names = set()
    for name, member in inspect.getmembers(cls, predicate=callable):
        if name.startswith("_"):
            continue
        if name in dir(Contract):  # base-class machinery (emit, dispatch...)
            continue
        names.add(name)
    return names


def test_dispatchable_method_surface_is_frozen():
    assert _public_methods(HITContract) == EXPECTED_METHODS | EXPECTED_VIEWS


def test_transaction_methods_take_exactly_one_call_context():
    for name in EXPECTED_METHODS:
        signature = inspect.signature(getattr(HITContract, name))
        parameters = list(signature.parameters.values())
        assert [p.name for p in parameters] == ["self", "ctx"], name
        annotation = parameters[1].annotation
        assert annotation in (inspect.Parameter.empty, CallContext, "CallContext"), name


def test_dispatch_refuses_private_methods():
    contract = HITContract("freeze-check")
    with pytest.raises(ContractError):
        contract.dispatch("_pay_worker", None)
    with pytest.raises(ContractError):
        contract.dispatch("no_such_method", None)


def test_phase_constants_are_frozen():
    assert (PHASE_COMMIT, PHASE_REVEAL, PHASE_EVALUATE, PHASE_DONE) == (1, 2, 3, 4)
    assert CIPHERTEXT_BYTES == 128


def test_constructor_contract():
    """Contracts are constructed with a name only; deploy args flow via ctx."""
    signature = inspect.signature(HITContract.__init__)
    assert [p.name for p in signature.parameters.values()] == ["self", "name"]
    contract = HITContract("hit:example")
    assert contract.name == "hit:example"
    assert contract.storage == {}


def test_gas_meter_vocabulary_is_frozen():
    """The charge_* helpers contracts meter themselves through."""
    expected = {
        "charge",
        "charge_intrinsic",
        "charge_sstore",
        "charge_sload",
        "charge_keccak",
        "charge_log",
        "charge_ecmul",
        "charge_ecadd",
        "charge_pairing",
        "charge_value_transfer",
        "charge_deployment",
    }
    available = {
        name
        for name, _ in inspect.getmembers(GasMeter, predicate=callable)
        if name.startswith("charge")
    }
    assert expected <= available
    # Count-style helpers default to one operation.
    assert inspect.signature(GasMeter.charge_ecmul).parameters["count"].default == 1
    assert inspect.signature(GasMeter.charge_ecadd).parameters["count"].default == 1


def test_gas_report_ledger_keys_are_frozen():
    """The per-operation gas ledger the analysis layer aggregates."""
    report = GasReport()
    assert set(vars(report)) == {
        "publish",
        "commits",
        "reveals",
        "golden",
        "rejections",
        "finalize",
    }
    assert report.total == 0
    assert report.submit_cost("nobody") == 0
