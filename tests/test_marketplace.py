"""The worker-side task marketplace: discovery, vetting, recommendation."""

import pytest

from repro.core.marketplace import TaskMarketplace
from repro.dragoon import Dragoon
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


@pytest.fixture
def busy_system():
    """A chain with one finished clean task, one finished mass-reject
    task, and one open task."""
    system = Dragoon()
    system.fund("honest-alice", 300)
    system.fund("mass-rejecter", 300)
    system.run_task("honest-alice", small_task(), [GOOD, GOOD],
                    worker_labels=["w0", "w1"])
    system.run_task("mass-rejecter", small_task(), [BAD, BAD],
                    worker_labels=["w2", "w3"])
    system.publish_task("honest-alice", small_task(budget=200))
    system.publish_task("mass-rejecter", small_task(budget=150))
    return system


def test_listings_show_open_tasks_first(busy_system):
    market = TaskMarketplace(busy_system.chain)
    open_listings = market.listings()
    assert len(open_listings) == 2
    assert all(l.is_open for l in open_listings)
    # Best reward first: 200/2 = 100 beats 150/2 = 75.
    assert open_listings[0].reward_per_worker == 100


def test_listings_include_closed_on_request(busy_system):
    market = TaskMarketplace(busy_system.chain)
    all_listings = market.listings(include_closed=True)
    assert len(all_listings) == 4
    closed = [l for l in all_listings if not l.is_open]
    assert len(closed) == 2


def test_flagged_requester_visible(busy_system):
    market = TaskMarketplace(busy_system.chain)
    by_requester = {
        l.requester.label: l for l in market.listings()
    }
    assert by_requester["mass-rejecter"].requester_flagged
    assert not by_requester["honest-alice"].requester_flagged


def test_expected_utility_positive_for_able_worker(busy_system):
    market = TaskMarketplace(busy_system.chain)
    listing = market.listings()[0]
    good_worker = market.expected_utility(listing, worker_accuracy=0.95)
    bad_worker = market.expected_utility(listing, worker_accuracy=0.2)
    assert good_worker > 0
    assert bad_worker < good_worker


def test_recommend_avoids_flagged_requesters(busy_system):
    market = TaskMarketplace(busy_system.chain)
    recommended = market.recommend(worker_accuracy=0.95)
    assert recommended
    assert all(
        l.requester.label != "mass-rejecter" for l in recommended
    )


def test_recommend_can_include_flagged(busy_system):
    market = TaskMarketplace(busy_system.chain)
    with_flagged = market.recommend(worker_accuracy=0.95, avoid_flagged=False)
    requesters = {l.requester.label for l in with_flagged}
    assert "mass-rejecter" in requesters


def test_recommend_empty_for_hopeless_worker(busy_system):
    market = TaskMarketplace(busy_system.chain)
    # A worker who cannot meet the threshold has negative utility
    # everywhere once effort costs are accounted.
    assert market.recommend(worker_accuracy=0.05) == []


def test_slots_accounting(busy_system):
    system = busy_system
    market = TaskMarketplace(system.chain)
    listing = market.listings()[0]
    handle = system.tasks[listing.contract_name]
    system.submit_answers(handle, "early-bird", GOOD)
    system.chain.mine_block()
    refreshed = [
        l for l in market.listings() if l.contract_name == listing.contract_name
    ][0]
    assert refreshed.slots_taken == 1
    assert refreshed.slots_remaining == 1


# ---------------------------------------------------------------------------
# Consistency under the session engine (queried mid-serve, between blocks)
# ---------------------------------------------------------------------------


def _engine_with_sessions(answer_sets):
    """Staggered sessions driven by hand so tests can query the
    marketplace between blocks."""
    from repro.core.requester import RequesterClient
    from repro.core.session import SessionEngine
    from repro.core.worker import WorkerClient

    engine = SessionEngine()
    sessions = []
    for index, answers in enumerate(answer_sets):
        requester = RequesterClient(
            "req-%d" % index, small_task(), engine.chain, engine.swarm
        )
        session = engine.publish_session(requester)
        for slot, sheet in enumerate(answers):
            session.add_worker(
                WorkerClient("m%d-%d" % (index, slot), engine.chain,
                             engine.swarm, answers=sheet)
            )
        sessions.append(session)
    return engine, sessions


def test_listings_stay_consistent_between_engine_steps():
    """At every block boundary of a serve-style run, each listing's
    slots_taken must equal the contract's actual committed count and
    is_open must mirror remaining capacity."""
    from repro.core.hit_contract import HITContract
    from repro.core.marketplace import TaskMarketplace

    engine, sessions = _engine_with_sessions([[GOOD, BAD], [GOOD, GOOD]])
    market = TaskMarketplace(engine.chain)
    checked = 0
    while not all(session.finished for session in sessions):
        engine.step()
        for listing in market.listings(include_closed=True):
            contract = engine.chain.contract(listing.contract_name)
            assert isinstance(contract, HITContract)
            committed = len(contract.committed_workers())
            assert listing.slots_taken == committed
            assert listing.slots_remaining == (
                listing.parameters.num_workers - committed
            )
            assert listing.is_open == (listing.slots_remaining > 0)
            checked += 1
    assert checked > 0


def test_listing_closes_the_block_commits_fill_it():
    from repro.core.marketplace import TaskMarketplace

    engine, sessions = _engine_with_sessions([[GOOD, BAD]])
    market = TaskMarketplace(engine.chain)
    # Published but not yet mined: both slots still read open.
    (listing,) = market.listings()
    assert listing.slots_taken == 0 and listing.is_open
    engine.step()  # both queued commits land in this block
    assert market.listings() == []  # full tasks drop out of the open view
    (closed,) = market.listings(include_closed=True)
    assert closed.slots_taken == 2 and not closed.is_open


def test_midstream_arrival_is_listed_while_earlier_tasks_progress():
    """A task published between steps shows up open immediately, while
    the earlier (already full) session is excluded — the worker's view
    a population polls every block."""
    from repro.core.marketplace import TaskMarketplace
    from repro.core.requester import RequesterClient

    engine, sessions = _engine_with_sessions([[GOOD, BAD]])
    market = TaskMarketplace(engine.chain)
    engine.step()  # first task fills
    late_requester = RequesterClient(
        "latecomer", small_task(), engine.chain, engine.swarm
    )
    engine.publish_session(late_requester)
    open_listings = market.listings()
    assert [l.requester.label for l in open_listings] == ["latecomer"]
    assert open_listings[0].slots_taken == 0
    # The full first task is only visible on request.
    assert len(market.listings(include_closed=True)) == 2


def test_recommendations_track_remaining_slots_mid_serve():
    """recommend() only offers tasks that still have room as the serve
    run advances block by block."""
    from repro.core.marketplace import TaskMarketplace

    # First task gets both its commits queued; second only one of two.
    engine, sessions = _engine_with_sessions([[GOOD, BAD], [GOOD]])
    market = TaskMarketplace(engine.chain)
    names_before = {
        l.contract_name for l in market.recommend(worker_accuracy=0.95)
    }
    assert len(names_before) == 2
    engine.step()  # queued commits land: task 0 fills, task 1 half-fills
    recommended = market.recommend(worker_accuracy=0.95)
    assert [l.contract_name for l in recommended] == [
        sessions[1].contract_name
    ]
    assert recommended[0].slots_taken == 1
    assert recommended[0].slots_remaining == 1
