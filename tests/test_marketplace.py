"""The worker-side task marketplace: discovery, vetting, recommendation."""

import pytest

from repro.core.marketplace import TaskMarketplace
from repro.dragoon import Dragoon
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


@pytest.fixture
def busy_system():
    """A chain with one finished clean task, one finished mass-reject
    task, and one open task."""
    system = Dragoon()
    system.fund("honest-alice", 300)
    system.fund("mass-rejecter", 300)
    system.run_task("honest-alice", small_task(), [GOOD, GOOD],
                    worker_labels=["w0", "w1"])
    system.run_task("mass-rejecter", small_task(), [BAD, BAD],
                    worker_labels=["w2", "w3"])
    system.publish_task("honest-alice", small_task(budget=200))
    system.publish_task("mass-rejecter", small_task(budget=150))
    return system


def test_listings_show_open_tasks_first(busy_system):
    market = TaskMarketplace(busy_system.chain)
    open_listings = market.listings()
    assert len(open_listings) == 2
    assert all(l.is_open for l in open_listings)
    # Best reward first: 200/2 = 100 beats 150/2 = 75.
    assert open_listings[0].reward_per_worker == 100


def test_listings_include_closed_on_request(busy_system):
    market = TaskMarketplace(busy_system.chain)
    all_listings = market.listings(include_closed=True)
    assert len(all_listings) == 4
    closed = [l for l in all_listings if not l.is_open]
    assert len(closed) == 2


def test_flagged_requester_visible(busy_system):
    market = TaskMarketplace(busy_system.chain)
    by_requester = {
        l.requester.label: l for l in market.listings()
    }
    assert by_requester["mass-rejecter"].requester_flagged
    assert not by_requester["honest-alice"].requester_flagged


def test_expected_utility_positive_for_able_worker(busy_system):
    market = TaskMarketplace(busy_system.chain)
    listing = market.listings()[0]
    good_worker = market.expected_utility(listing, worker_accuracy=0.95)
    bad_worker = market.expected_utility(listing, worker_accuracy=0.2)
    assert good_worker > 0
    assert bad_worker < good_worker


def test_recommend_avoids_flagged_requesters(busy_system):
    market = TaskMarketplace(busy_system.chain)
    recommended = market.recommend(worker_accuracy=0.95)
    assert recommended
    assert all(
        l.requester.label != "mass-rejecter" for l in recommended
    )


def test_recommend_can_include_flagged(busy_system):
    market = TaskMarketplace(busy_system.chain)
    with_flagged = market.recommend(worker_accuracy=0.95, avoid_flagged=False)
    requesters = {l.requester.label for l in with_flagged}
    assert "mass-rejecter" in requesters


def test_recommend_empty_for_hopeless_worker(busy_system):
    market = TaskMarketplace(busy_system.chain)
    # A worker who cannot meet the threshold has negative utility
    # everywhere once effort costs are accounted.
    assert market.recommend(worker_accuracy=0.05) == []


def test_slots_accounting(busy_system):
    system = busy_system
    market = TaskMarketplace(system.chain)
    listing = market.listings()[0]
    handle = system.tasks[listing.contract_name]
    system.submit_answers(handle, "early-bird", GOOD)
    system.chain.mine_block()
    refreshed = [
        l for l in market.listings() if l.contract_name == listing.contract_name
    ][0]
    assert refreshed.slots_taken == 1
    assert refreshed.slots_remaining == 1
