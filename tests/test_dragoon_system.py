"""The Dragoon multi-task facade: shared chain, long-lived keys."""

import pytest

from repro.dragoon import Dragoon
from repro.errors import ProtocolError
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


def test_single_task_through_facade():
    system = Dragoon()
    system.fund("alice", 100)
    outcome = system.run_task("alice", small_task(), [GOOD, BAD])
    payments = outcome.payments()
    assert sorted(payments.values()) == [0, 50]


def test_two_sequential_tasks_same_requester():
    system = Dragoon()
    system.fund("alice", 200)
    first = system.run_task("alice", small_task(), [GOOD, GOOD],
                            worker_labels=["w0", "w1"])
    second = system.run_task("alice", small_task(), [GOOD, BAD],
                             worker_labels=["w2", "w3"])
    assert all(v == 50 for v in first.payments().values())
    assert sorted(second.payments().values()) == [0, 50]
    assert len(system.tasks) == 2


def test_requester_key_is_stable_across_tasks():
    """The paper's one-key-pair-for-all-tasks property."""
    system = Dragoon()
    system.fund("alice", 200)
    key_before = system.requester_public_key_bytes("alice")
    system.run_task("alice", small_task(), [GOOD, GOOD])
    key_after = system.requester_public_key_bytes("alice")
    assert key_before == key_after
    published = system.chain.events_named("published")
    assert published[0].payload["pubkey"] == key_before


def test_different_requesters_have_different_keys():
    system = Dragoon()
    assert (
        system.requester_public_key_bytes("alice")
        != system.requester_public_key_bytes("bob")
    )


def test_gas_report_from_facade_matches_chain():
    system = Dragoon()
    system.fund("alice", 100)
    outcome = system.run_task("alice", small_task(), [GOOD, BAD])
    gas = outcome.gas
    assert gas.publish > 1_000_000
    assert len(gas.commits) == 2
    assert len(gas.reveals) == 2
    assert len(gas.rejections) == 1
    assert gas.finalize > 0


def test_publish_fails_without_funds():
    system = Dragoon()
    system.fund("pauper", 1)
    with pytest.raises(ProtocolError):
        system.publish_task("pauper", small_task())


def test_worker_identities_can_span_tasks():
    system = Dragoon()
    system.fund("alice", 200)
    first = system.run_task("alice", small_task(), [GOOD, GOOD],
                            worker_labels=["w0", "w1"])
    second = system.run_task("alice", small_task(), [GOOD, GOOD],
                             worker_labels=["w0", "w1"])
    ledger = system.chain.ledger
    # Same worker accumulated rewards from both tasks.
    assert ledger.balance_of(first.workers[0].address) == 100


def test_total_gas_accumulates():
    system = Dragoon()
    system.fund("alice", 200)
    system.run_task("alice", small_task(), [GOOD, GOOD],
                    worker_labels=["w0", "w1"])
    first_total = system.total_gas
    system.run_task("alice", small_task(), [GOOD, GOOD],
                    worker_labels=["w2", "w3"])
    assert system.total_gas > first_total
