"""The ledger functionality L: freeze/pay semantics and conservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EscrowError, InsufficientFunds, UnknownAccount
from repro.ledger.accounts import Address, Registry
from repro.ledger.ledger import Ledger


@pytest.fixture
def ledger():
    book = Ledger()
    book.open_account(Address.from_label("alice"), 100)
    book.open_account(Address.from_label("bob"), 50)
    return book


ALICE = Address.from_label("alice")
BOB = Address.from_label("bob")
CONTRACT = Address.from_label("contract:test")


def test_open_and_balance(ledger):
    assert ledger.balance_of(ALICE) == 100
    assert ledger.balance_of(BOB) == 50


def test_double_open_rejected(ledger):
    with pytest.raises(UnknownAccount):
        ledger.open_account(ALICE, 1)


def test_unknown_account(ledger):
    with pytest.raises(UnknownAccount):
        ledger.balance_of(Address.from_label("carol"))


def test_freeze_success(ledger):
    assert ledger.freeze(CONTRACT, ALICE, 60)
    assert ledger.balance_of(ALICE) == 40
    assert ledger.escrow_of(CONTRACT) == 60


def test_freeze_nofund_returns_false(ledger):
    assert not ledger.freeze(CONTRACT, ALICE, 101)
    assert ledger.balance_of(ALICE) == 100
    assert ledger.escrow_of(CONTRACT) == 0


def test_pay_from_escrow(ledger):
    ledger.freeze(CONTRACT, ALICE, 60)
    ledger.pay(CONTRACT, BOB, 25)
    assert ledger.balance_of(BOB) == 75
    assert ledger.escrow_of(CONTRACT) == 35


def test_pay_exceeding_escrow_rejected(ledger):
    ledger.freeze(CONTRACT, ALICE, 10)
    with pytest.raises(EscrowError):
        ledger.pay(CONTRACT, BOB, 11)


def test_pay_to_unknown_account_rejected(ledger):
    ledger.freeze(CONTRACT, ALICE, 10)
    with pytest.raises(UnknownAccount):
        ledger.pay(CONTRACT, Address.from_label("nobody"), 5)


def test_transfer(ledger):
    ledger.transfer(ALICE, BOB, 30)
    assert ledger.balance_of(ALICE) == 70
    assert ledger.balance_of(BOB) == 80


def test_transfer_insufficient(ledger):
    with pytest.raises(InsufficientFunds):
        ledger.transfer(BOB, ALICE, 51)


def test_negative_amounts_rejected(ledger):
    with pytest.raises(InsufficientFunds):
        ledger.freeze(CONTRACT, ALICE, -1)
    with pytest.raises(EscrowError):
        ledger.pay(CONTRACT, ALICE, -1)
    with pytest.raises(InsufficientFunds):
        ledger.transfer(ALICE, BOB, -1)


def test_fee_burn(ledger):
    ledger.charge_fee(ALICE, 10)
    assert ledger.balance_of(ALICE) == 90
    assert ledger.fees_collected == 10


def test_total_supply_conserved(ledger):
    supply = ledger.total_supply()
    ledger.freeze(CONTRACT, ALICE, 50)
    ledger.pay(CONTRACT, BOB, 20)
    ledger.transfer(BOB, ALICE, 5)
    ledger.charge_fee(ALICE, 3)
    assert ledger.total_supply() == supply


def test_entries_log(ledger):
    ledger.freeze(CONTRACT, ALICE, 50, memo="budget")
    ledger.pay(CONTRACT, BOB, 20, memo="reward")
    kinds = [entry.kind for entry in ledger.entries]
    assert kinds == ["mint", "mint", "freeze", "pay"]
    assert ledger.payments_to(BOB)[0].amount == 20


def test_snapshot_restore(ledger):
    before = ledger.snapshot()
    ledger.freeze(CONTRACT, ALICE, 50)
    ledger.pay(CONTRACT, BOB, 20)
    ledger.restore(before)
    assert ledger.balance_of(ALICE) == 100
    assert ledger.balance_of(BOB) == 50
    assert ledger.escrow_of(CONTRACT) == 0
    assert len(ledger.entries) == 2  # the two mints


@given(
    st.lists(
        st.tuples(st.sampled_from(["freeze", "pay", "transfer"]),
                  st.integers(min_value=0, max_value=40)),
        max_size=30,
    )
)
@settings(max_examples=30)
def test_supply_invariant_under_random_operations(operations):
    book = Ledger()
    book.open_account(ALICE, 200)
    book.open_account(BOB, 100)
    initial = book.total_supply()
    for kind, amount in operations:
        try:
            if kind == "freeze":
                book.freeze(CONTRACT, ALICE, amount)
            elif kind == "pay":
                book.pay(CONTRACT, BOB, amount)
            else:
                book.transfer(BOB, ALICE, amount)
        except (EscrowError, InsufficientFunds):
            pass
        assert book.total_supply() == initial


def test_address_validation():
    with pytest.raises(Exception):
        Address(b"short")
    address = Address.from_label("alice")
    assert len(address.value) == 20
    assert address.hex().startswith("0x")
    assert str(address) == "alice"


def test_registry():
    registry = Registry()
    alice = registry.grant("alice")
    assert registry.is_granted(alice)
    assert registry.grant("alice") == alice
    assert registry.lookup("alice") == alice
    assert registry.lookup("carol") is None
    registry.grant("bob")
    assert len(registry) == 2
    assert alice in set(registry)
