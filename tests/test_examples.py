"""Smoke tests: every shipped example runs to completion.

Examples are documentation that executes; these tests keep them honest.
Each runs in a subprocess exactly as a user would invoke it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXPECTED_SNIPPETS = {
    "quickstart.py": "fairness holds",
    "imagenet_annotation.py": "decentralized is cheaper     : True",
    "street_parking.py": "qualified submissions off-chain",
    "attack_gallery.py": "all four attacks defeated",
    "consensus_labels.py": "homomorphic aggregation",
    "anonymous_workers.py": "never learned which ring members",
    "task_marketplace.py": "recommendations for a 95%-accurate worker",
    "staggered_marketplace.py": "rejected at the Fig. 4 deadline",
    "simulated_marketplace.py": "reports identical byte for byte",
    "resumable_marketplace.py": "all three paths agree on the final state_root",
}


@pytest.mark.slow
@pytest.mark.parametrize("script,snippet", sorted(EXPECTED_SNIPPETS.items()))
def test_example_runs(script, snippet):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert snippet in result.stdout
