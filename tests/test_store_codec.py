"""The canonical codec: round trips, determinism, and schema guards.

The codec is the floor the whole persistence subsystem stands on: if
two encodings of the same state could differ, ``state_root`` stops
being an integrity anchor; if a round trip could lose a field, a
restored node silently diverges.  These tests pin both properties at
the value layer and at the whole-chain layer.
"""

from __future__ import annotations

import pytest

from repro.chain.transactions import scoped_tx_nonces
from repro.core.task import HITTask, TaskParameters
from repro.crypto.curve import G1Point
from repro.crypto.elgamal import keygen
from repro.crypto.poqoea import MismatchEntry, QualityProof
from repro.crypto.rng import deterministic_entropy
from repro.crypto.vpke import DecryptionProof
from repro.dragoon import Dragoon
from repro.ledger.accounts import Address
from repro.store import codec
from repro.store.codec import CodecError, decode, encode


def tiny_task() -> HITTask:
    parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
    return HITTask(
        parameters,
        ["q%d" % i for i in range(10)],
        [0, 1, 2],
        [0, 0, 0],
        [0] * 10,
    )


# ---------------------------------------------------------------------------
# Value layer
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        1,
        -1,
        2**80,
        -(2**80),
        3.5,
        b"",
        b"\x00\xff" * 16,
        "",
        "unicode: ✓",
        [],
        [1, [2, [3]]],
        (),
        (1, "two", b"three"),
        {},
        {"a": 1, "b": [2, 3], 5: None},
        {b"bytes-key": {"nested": (True, False)}},
    ],
    ids=repr,
)
def test_plain_values_round_trip(value):
    assert decode(encode(value)) == value


def test_round_trip_preserves_container_types():
    assert type(decode(encode((1, 2)))) is tuple
    assert type(decode(encode([1, 2]))) is list
    assert decode(encode(True)) is True
    assert decode(encode(1)) == 1 and decode(encode(1)) is not True


def test_dict_encoding_keeps_iteration_order():
    forward = {"a": 1, "b": 2}
    backward = {"b": 2, "a": 1}
    assert encode(forward) != encode(backward)
    assert list(decode(encode(backward))) == ["b", "a"]


def test_encoding_is_deterministic():
    value = {"k": [1, b"x", ("y", None)], "j": -7}
    assert encode(value) == encode(value)


def test_typed_values_round_trip():
    address = Address.from_label("alice")
    parameters = tiny_task().parameters
    point = G1Point.generator() * 12345
    with deterministic_entropy(1):
        public_key, secret_key = keygen()
        ciphertext = public_key.encrypt(1)
    proof = DecryptionProof(point, point * 3, 42)
    quality = QualityProof((MismatchEntry(2, 1, proof), MismatchEntry(4, point, proof)))
    for value in (address, parameters, point, ciphertext, proof, quality):
        decoded = decode(encode(value))
        assert type(decoded) is type(value)
        assert decoded == value


def test_unencodable_value_raises():
    with pytest.raises(CodecError):
        encode(object())
    with pytest.raises(CodecError):
        encode({1, 2})  # sets have no canonical order


def test_trailing_garbage_rejected():
    with pytest.raises(CodecError):
        decode(encode(1) + b"\x00")


def test_truncated_input_rejected():
    blob = encode({"key": b"\x01" * 40})
    with pytest.raises(CodecError):
        decode(blob[:-5])


# ---------------------------------------------------------------------------
# Whole-chain schema
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def settled_chain():
    """A chain that ran one full HIT (every record type populated)."""
    with scoped_tx_nonces(), deterministic_entropy(7):
        dragoon = Dragoon()
        dragoon.fund("alice", 500)
        dragoon.run_task("alice", tiny_task(), [[0] * 10, [1] * 10])
    return dragoon.chain


def test_chain_state_round_trips(settled_chain):
    blob = codec.encode_chain_state(settled_chain)
    restored = codec.decode_chain_state(blob)
    assert restored.height == settled_chain.height
    assert codec.encode_chain_state(restored) == blob
    assert codec.state_root(restored) == codec.state_root(settled_chain)


def test_restored_chain_preserves_observable_state(settled_chain):
    restored = codec.decode_chain_state(
        codec.encode_chain_state(settled_chain)
    )
    assert restored.clock.period == settled_chain.clock.period
    assert restored.total_gas == settled_chain.total_gas
    assert len(restored.event_log) == len(settled_chain.event_log)
    assert [r.event.name for r in restored.event_log] == [
        r.event.name for r in settled_chain.event_log
    ]
    assert restored.ledger.total_supply() == settled_chain.ledger.total_supply()
    contract_name = next(iter(settled_chain._contracts))
    assert (
        restored.contract(contract_name).storage
        == settled_chain.contract(contract_name).storage
    )
    # Block hashes survive: transactions (nonces included) round-trip.
    assert [b.block_hash() for b in restored.blocks] == [
        b.block_hash() for b in settled_chain.blocks
    ]


def test_state_root_reflects_every_layer(settled_chain):
    """Touching any state layer must move the root."""
    baseline = codec.state_root(settled_chain)
    data = codec.chain_state_to_data(settled_chain)

    mutated = codec.decode_chain_state(codec.encode(data))
    mutated.clock._period += 1
    assert codec.state_root(mutated) != baseline

    contract = codec.decode_chain_state(codec.encode(data))
    contract.ledger._balances[next(iter(contract.ledger._balances))] += 1
    assert codec.state_root(contract) != baseline


def test_schema_version_is_enforced(settled_chain):
    data = codec.chain_state_to_data(settled_chain)
    data["schema"] = codec.SCHEMA_VERSION + 1
    with pytest.raises(CodecError):
        codec.chain_from_data(data)


def test_unregistered_scheduler_is_refused():
    from repro.chain.chain import Chain
    from repro.chain.network import RushingScheduler

    chain = Chain(scheduler=RushingScheduler(lambda pending: list(pending)))
    with pytest.raises(CodecError):
        codec.chain_state_to_data(chain)
