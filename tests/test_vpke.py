"""VPKE (verifiable decryption): the paper's §V-C construction.

Covers completeness (in-range and out-of-range claims), soundness
against tampered claims and proofs, the zero-knowledge simulator, and
serialization.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.curve import G1Point
from repro.crypto.elgamal import keygen
from repro.crypto.random_oracle import RandomOracle
from repro.crypto.vpke import (
    DecryptionProof,
    prove_decryption,
    simulate_proof,
    verify_decryption,
)


@pytest.fixture(scope="module")
def keys():
    return keygen(secret=0xABCDEF)


def test_completeness_in_range(keys):
    pk, sk = keys
    for message in range(4):
        ciphertext = pk.encrypt(message)
        claim, proof = prove_decryption(sk, ciphertext, range(4))
        assert claim == message
        assert verify_decryption(pk, claim, ciphertext, proof)


def test_completeness_out_of_range(keys):
    """Out-of-range plaintexts are claimed as bare group elements."""
    pk, sk = keys
    ciphertext = pk.encrypt(1000)
    claim, proof = prove_decryption(sk, ciphertext, range(2))
    assert isinstance(claim, G1Point)
    assert claim == G1Point.generator() * 1000
    assert verify_decryption(pk, claim, ciphertext, proof)


def test_soundness_wrong_claim_rejected(keys):
    pk, sk = keys
    ciphertext = pk.encrypt(0)
    claim, proof = prove_decryption(sk, ciphertext, range(2))
    assert not verify_decryption(pk, 1, ciphertext, proof)


def test_soundness_wrong_group_claim_rejected(keys):
    pk, sk = keys
    ciphertext = pk.encrypt(77)
    claim, proof = prove_decryption(sk, ciphertext, range(2))
    wrong = G1Point.generator() * 78
    assert not verify_decryption(pk, wrong, ciphertext, proof)


def test_soundness_proof_not_transferable_between_ciphertexts(keys):
    pk, sk = keys
    c1 = pk.encrypt(1)
    c2 = pk.encrypt(1)
    claim, proof = prove_decryption(sk, c1, range(2))
    assert not verify_decryption(pk, claim, c2, proof)


def test_soundness_tampered_proof_fields(keys):
    pk, sk = keys
    ciphertext = pk.encrypt(1)
    claim, proof = prove_decryption(sk, ciphertext, range(2))
    g = G1Point.generator()
    tampered_a = DecryptionProof(proof.commitment_a + g, proof.commitment_b,
                                 proof.response)
    tampered_b = DecryptionProof(proof.commitment_a, proof.commitment_b + g,
                                 proof.response)
    tampered_z = DecryptionProof(proof.commitment_a, proof.commitment_b,
                                 proof.response + 1)
    assert not verify_decryption(pk, claim, ciphertext, tampered_a)
    assert not verify_decryption(pk, claim, ciphertext, tampered_b)
    assert not verify_decryption(pk, claim, ciphertext, tampered_z)


def test_wrong_public_key_rejected(keys):
    pk, sk = keys
    other_pk, _ = keygen(secret=0x123456)
    ciphertext = pk.encrypt(1)
    claim, proof = prove_decryption(sk, ciphertext, range(2))
    assert not verify_decryption(other_pk, claim, ciphertext, proof)


@given(st.integers(min_value=0, max_value=7))
@settings(max_examples=8, deadline=None)
def test_completeness_property(message):
    pk, sk = keygen(secret=0x777)
    ciphertext = pk.encrypt(message)
    claim, proof = prove_decryption(sk, ciphertext, range(8))
    assert claim == message
    assert verify_decryption(pk, claim, ciphertext, proof)


def test_zero_knowledge_simulator(keys):
    """S_VPKE forges accepting proofs without the key (programmed RO)."""
    pk, _ = keys
    oracle = RandomOracle()
    ciphertext = pk.encrypt(1)
    forged = simulate_proof(pk, 1, ciphertext, oracle=oracle)
    assert verify_decryption(pk, 1, ciphertext, forged, oracle=oracle)


def test_simulated_proof_rejected_by_unprogrammed_oracle(keys):
    pk, _ = keys
    oracle = RandomOracle()
    ciphertext = pk.encrypt(1)
    forged = simulate_proof(pk, 1, ciphertext, oracle=oracle)
    assert not verify_decryption(pk, 1, ciphertext, forged, oracle=RandomOracle())


def test_simulated_out_of_range_claim(keys):
    pk, _ = keys
    oracle = RandomOracle()
    ciphertext = pk.encrypt(500)
    claim_point = G1Point.generator() * 500
    forged = simulate_proof(pk, claim_point, ciphertext, oracle=oracle)
    assert verify_decryption(pk, claim_point, ciphertext, forged, oracle=oracle)


def test_simulated_transcript_shape_matches_honest(keys):
    """Honest and simulated proofs are structurally indistinguishable."""
    pk, sk = keys
    ciphertext = pk.encrypt(1)
    _, honest = prove_decryption(sk, ciphertext, range(2))
    oracle = RandomOracle()
    forged = simulate_proof(pk, 1, ciphertext, oracle=oracle)
    assert isinstance(forged, DecryptionProof)
    assert len(honest.to_bytes()) == len(forged.to_bytes()) == 160


def test_proof_serialization_roundtrip(keys):
    pk, sk = keys
    ciphertext = pk.encrypt(1)
    claim, proof = prove_decryption(sk, ciphertext, range(2))
    restored = DecryptionProof.from_bytes(proof.to_bytes())
    assert restored == proof
    assert verify_decryption(pk, claim, ciphertext, restored)


def test_proof_deserialization_length_check():
    with pytest.raises(ValueError):
        DecryptionProof.from_bytes(b"\x00" * 100)


def test_self_test_passes():
    from repro.crypto.vpke import self_test

    self_test()
