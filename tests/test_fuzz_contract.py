"""Failure injection: garbage transactions cannot corrupt a task.

A public contract receives arbitrary junk.  Whatever malformed methods,
argument shapes, or hostile byte strings arrive, every such transaction
must revert cleanly (failed receipt, no exception escaping the chain)
and the protocol must still settle with the correct payments.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.chain import Chain
from repro.core.requester import RequesterClient
from repro.core.worker import WorkerClient
from repro.errors import ReproError
from repro.storage.swarm import SwarmStore
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10

METHODS = [
    "commit", "reveal", "golden", "evaluate", "outrange", "finalize",
    "cancel", "no_such_method", "__deploy__", "_sstore", "storage",
]

JUNK_ARGS = [
    (),
    (b"",),
    (b"\x00" * 32,),
    (b"\xff" * 31,),
    ("string-instead-of-bytes",),
    (None,),
    (12345,),
    (b"\x00" * 32, b"\x00" * 32),
    (b"junk", b"junk", b"junk", b"junk", b"junk"),
    ({},),
]


def _junk_storm(chain, contract_name, attacker, rng, count=12):
    """Fire ``count`` random malformed transactions at the contract."""
    for _ in range(count):
        method = rng.choice(METHODS)
        args = rng.choice(JUNK_ARGS)
        payload = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
        try:
            chain.send(attacker, contract_name, method,
                       args=args, payload=payload)
        except ReproError:
            pass  # rejected at submission is also fine


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_junk_storm_cannot_break_settlement(seed):
    rng = random.Random(seed)
    task = small_task()
    chain, swarm = Chain(), SwarmStore()
    requester = RequesterClient("req", task, chain, swarm)
    assert requester.publish().succeeded
    attacker = chain.register_account("griefer-%d" % seed, 0)

    workers = [
        WorkerClient("w0", chain, swarm, answers=GOOD),
        WorkerClient("w1", chain, swarm, answers=BAD),
    ]
    # Interleave junk with every protocol phase.
    _junk_storm(chain, requester.contract_name, attacker, rng)
    for worker in workers:
        worker.discover(requester.contract_name)
        worker.send_commit()
    _junk_storm(chain, requester.contract_name, attacker, rng)
    chain.mine_block()

    _junk_storm(chain, requester.contract_name, attacker, rng)
    for worker in workers:
        worker.send_reveal()
    chain.mine_block()

    requester.evaluate_all()
    _junk_storm(chain, requester.contract_name, attacker, rng)
    chain.mine_block()

    requester.send_finalize()
    chain.mine_block()

    # The attacker achieved nothing; the honest outcome stands.
    assert chain.ledger.balance_of(workers[0].address) == 50
    assert chain.ledger.balance_of(workers[1].address) == 0
    assert chain.ledger.balance_of(attacker) == 0
    assert chain.ledger.escrow_of(
        chain.contract(requester.contract_name).address
    ) == 0


def test_junk_receipts_all_marked_failed():
    rng = random.Random(99)
    task = small_task()
    chain, swarm = Chain(), SwarmStore()
    requester = RequesterClient("req", task, chain, swarm)
    assert requester.publish().succeeded
    attacker = chain.register_account("griefer", 0)
    _junk_storm(chain, requester.contract_name, attacker, rng, count=20)
    block = chain.mine_block()
    junk_receipts = [
        r for r in block.receipts if r.transaction.sender == attacker
    ]
    assert junk_receipts
    assert all(not r.succeeded for r in junk_receipts)
    assert all(r.revert_reason for r in junk_receipts)


@given(st.binary(max_size=96), st.sampled_from(["commit", "reveal", "golden"]))
@settings(max_examples=15, deadline=None)
def test_single_junk_transaction_never_crashes(payload, method):
    task = small_task()
    chain, swarm = Chain(), SwarmStore()
    requester = RequesterClient("req", task, chain, swarm)
    assert requester.publish().succeeded
    attacker = chain.register_account("fuzzer", 0)
    chain.send(attacker, requester.contract_name, method,
               args=(payload,), payload=payload)
    block = chain.mine_block()
    assert not block.receipts[0].succeeded
