"""BN-128 G1: group laws, scalar arithmetic, serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.curve import (
    CURVE_ORDER,
    G1Point,
    GENERATOR,
    ec_add,
    ec_mul,
    is_on_curve,
    random_scalar,
    validate_scalar,
)
from repro.errors import InvalidPoint, InvalidScalar

scalars = st.integers(min_value=0, max_value=CURVE_ORDER - 1)
small_scalars = st.integers(min_value=0, max_value=2**64)

G = G1Point.generator()


def test_generator_on_curve():
    assert is_on_curve((1, 2))
    assert G.x == 1 and G.y == 2


def test_generator_has_curve_order():
    assert (G * CURVE_ORDER).is_infinity
    assert not (G * (CURVE_ORDER - 1)).is_infinity


def test_identity_laws():
    infinity = G1Point.infinity()
    assert G + infinity == G
    assert infinity + G == G
    assert (G - G).is_infinity
    assert (infinity + infinity).is_infinity


@given(small_scalars, small_scalars)
@settings(max_examples=20, deadline=None)
def test_scalar_distributivity(a, b):
    assert G * a + G * b == G * (a + b)


@given(small_scalars)
@settings(max_examples=20, deadline=None)
def test_negation(a):
    p = G * a
    assert (p + (-p)).is_infinity


@given(st.integers(min_value=1, max_value=300))
@settings(max_examples=10, deadline=None)
def test_small_multiples_match_repeated_addition(n):
    accumulated = G1Point.infinity()
    for _ in range(n):
        accumulated = accumulated + G
    assert accumulated == G * n


def test_double_matches_add():
    assert G.double() == G + G
    assert (G * 7).double() == G * 14


def test_scalar_reduced_mod_order():
    assert G * (CURVE_ORDER + 5) == G * 5
    assert (G * 0).is_infinity


def test_commutativity_of_addition():
    p, q = G * 11, G * 29
    assert p + q == q + p


def test_associativity_of_addition():
    p, q, r = G * 3, G * 5, G * 9
    assert (p + q) + r == p + (q + r)


def test_off_curve_point_rejected():
    with pytest.raises(InvalidPoint):
        G1Point((1, 3))
    with pytest.raises(InvalidPoint):
        G1Point((0, 1))


def test_serialization_roundtrip():
    p = G * 123456789
    assert G1Point.from_bytes(p.to_bytes()) == p
    assert len(p.to_bytes()) == 64


def test_infinity_serialization():
    infinity = G1Point.infinity()
    assert infinity.to_bytes() == b"\x00" * 64
    assert G1Point.from_bytes(b"\x00" * 64).is_infinity


def test_infinity_has_no_coordinates():
    with pytest.raises(InvalidPoint):
        _ = G1Point.infinity().x


def test_from_x_lifts_onto_curve():
    p = G * 42
    lifted = G1Point.from_x(p.x, y_parity=p.y % 2)
    assert lifted == p


def test_hash_to_group_deterministic_and_on_curve():
    a = G1Point.hash_to_group(b"dragoon")
    b = G1Point.hash_to_group(b"dragoon")
    c = G1Point.hash_to_group(b"other")
    assert a == b
    assert a != c
    assert is_on_curve(a.affine)


def test_hash_to_group_retries_only_on_non_residues(monkeypatch):
    """Regression: the try-and-increment loop once swallowed *every*
    exception, so a genuine fault in the lifting path (here injected
    into the square root) presented as an infinite loop instead of an
    error.  Only :class:`NonResidueError` may send the loop around."""
    import repro.crypto.curve as curve_module

    calls = []

    def faulting_sqrt(value, modulus):
        calls.append(value)
        raise OSError("injected fault in the lifting path")

    monkeypatch.setattr(curve_module, "sqrt_mod", faulting_sqrt)
    with pytest.raises(OSError, match="injected fault"):
        G1Point.hash_to_group(b"dragoon")
    assert len(calls) == 1  # raised on the first candidate, no spin


def test_hash_to_group_still_retries_past_real_non_residues(monkeypatch):
    """The ~half of candidates with no square root must still retry."""
    import repro.crypto.curve as curve_module
    from repro.errors import NonResidueError

    real_sqrt = curve_module.sqrt_mod
    attempts = []

    def counting_sqrt(value, modulus):
        attempts.append(value)
        if len(attempts) == 1:
            raise NonResidueError("forced first-candidate miss")
        return real_sqrt(value, modulus)

    monkeypatch.setattr(curve_module, "sqrt_mod", counting_sqrt)
    point = G1Point.hash_to_group(b"dragoon")
    assert len(attempts) >= 2  # the loop went around
    assert is_on_curve(point.affine)


def test_points_hashable():
    assert len({G, G * 2, G + G}) == 2


def test_low_level_helpers_match_class_ops():
    p, q = (G * 5).affine, (G * 7).affine
    assert ec_add(p, q) == (G * 12).affine
    assert ec_mul(p, 3) == (G * 15).affine


def test_random_scalar_in_range():
    for _ in range(10):
        s = random_scalar()
        assert 0 < s < CURVE_ORDER


def test_validate_scalar():
    assert validate_scalar(5) == 5
    with pytest.raises(InvalidScalar):
        validate_scalar(-1)
    with pytest.raises(InvalidScalar):
        validate_scalar(CURVE_ORDER)
    with pytest.raises(InvalidScalar):
        validate_scalar("5")


def test_generator_constant_matches():
    assert GENERATOR == G1Point.generator()
