"""LSAG linkable ring signatures: anonymity mechanics and linkability."""

import pytest

from repro.crypto.curve import G1Point, random_scalar
from repro.crypto.ring import (
    RingSignature,
    keygen_ring,
    linkability_tag,
    ring_sign,
    ring_verify,
    tag_base,
    tags_link,
)
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def ring():
    return keygen_ring(4)


CONTEXT = b"task-42"


def test_sign_verify_roundtrip(ring):
    publics, secrets = ring
    for index in range(len(publics)):
        signature = ring_sign(b"msg", publics, secrets[index], index, CONTEXT)
        assert ring_verify(b"msg", publics, signature, CONTEXT)


def test_wrong_message_rejected(ring):
    publics, secrets = ring
    signature = ring_sign(b"msg", publics, secrets[0], 0, CONTEXT)
    assert not ring_verify(b"other", publics, signature, CONTEXT)


def test_wrong_context_rejected(ring):
    publics, secrets = ring
    signature = ring_sign(b"msg", publics, secrets[0], 0, CONTEXT)
    assert not ring_verify(b"msg", publics, signature, b"task-43")


def test_wrong_ring_rejected(ring):
    publics, secrets = ring
    signature = ring_sign(b"msg", publics, secrets[0], 0, CONTEXT)
    other_publics, _ = keygen_ring(4)
    assert not ring_verify(b"msg", other_publics, signature, CONTEXT)


def test_tampered_signature_rejected(ring):
    publics, secrets = ring
    signature = ring_sign(b"msg", publics, secrets[1], 1, CONTEXT)
    tampered = RingSignature(
        signature.challenge,
        (signature.responses[0] + 1,) + signature.responses[1:],
        signature.tag,
    )
    assert not ring_verify(b"msg", publics, tampered, CONTEXT)


def test_tampered_tag_rejected(ring):
    publics, secrets = ring
    signature = ring_sign(b"msg", publics, secrets[1], 1, CONTEXT)
    forged = RingSignature(
        signature.challenge,
        signature.responses,
        signature.tag + G1Point.generator(),
    )
    assert not ring_verify(b"msg", publics, forged, CONTEXT)


def test_same_signer_same_context_links(ring):
    publics, secrets = ring
    a = ring_sign(b"msg-1", publics, secrets[2], 2, CONTEXT)
    b = ring_sign(b"msg-2", publics, secrets[2], 2, CONTEXT)
    assert tags_link(a, b)
    assert a.tag == linkability_tag(secrets[2], CONTEXT)


def test_different_signers_do_not_link(ring):
    publics, secrets = ring
    a = ring_sign(b"msg", publics, secrets[0], 0, CONTEXT)
    b = ring_sign(b"msg", publics, secrets[1], 1, CONTEXT)
    assert not tags_link(a, b)


def test_same_signer_different_contexts_unlinkable(ring):
    """Cross-task unlinkability: tags under different contexts differ."""
    publics, secrets = ring
    a = ring_sign(b"msg", publics, secrets[0], 0, b"task-1")
    b = ring_sign(b"msg", publics, secrets[0], 0, b"task-2")
    assert not tags_link(a, b)
    assert tag_base(b"task-1") != tag_base(b"task-2")


def test_signature_hides_signer_index(ring):
    """Structural anonymity: signatures by different members have the
    same shape and each verifies; nothing in the signature exposes the
    index (the tag differs, but maps to no public key directly)."""
    publics, secrets = ring
    signatures = [
        ring_sign(b"msg", publics, secrets[i], i, CONTEXT)
        for i in range(len(publics))
    ]
    for signature in signatures:
        assert ring_verify(b"msg", publics, signature, CONTEXT)
        assert len(signature.responses) == len(publics)
        assert signature.tag not in publics


def test_ring_size_two_minimum():
    publics, secrets = keygen_ring(2)
    signature = ring_sign(b"m", publics, secrets[1], 1, CONTEXT)
    assert ring_verify(b"m", publics, signature, CONTEXT)
    with pytest.raises(CryptoError):
        ring_sign(b"m", publics[:1], secrets[0], 0, CONTEXT)


def test_mismatched_secret_rejected(ring):
    publics, secrets = ring
    with pytest.raises(CryptoError):
        ring_sign(b"m", publics, secrets[0], 1, CONTEXT)
    with pytest.raises(CryptoError):
        ring_sign(b"m", publics, random_scalar(), 0, CONTEXT)


def test_response_count_must_match_ring(ring):
    publics, secrets = ring
    signature = ring_sign(b"m", publics, secrets[0], 0, CONTEXT)
    assert not ring_verify(b"m", publics[:3], signature, CONTEXT)


def test_signature_size(ring):
    publics, secrets = ring
    signature = ring_sign(b"m", publics, secrets[0], 0, CONTEXT)
    assert signature.size_bytes() == 32 + 32 * 4 + 64
