"""Gold-standard auditability: reconstructing reputations from the chain."""

import pytest

from repro.core.audit import GoldAuditLog
from repro.core.protocol import run_hit
from repro.dragoon import Dragoon
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


def test_audit_reconstructs_single_task():
    outcome = run_hit(small_task(), [GOOD, BAD])
    log = GoldAuditLog(outcome.chain)
    records = log.audit_tasks()
    assert len(records) == 1
    record = next(iter(records.values()))
    assert record.requester.label == "requester"
    assert record.golden_opened
    assert record.gold_indexes == tuple(small_task().gold_indexes)
    assert len(record.paid_workers) == 1
    assert len(record.rejected_workers) == 1
    assert record.rejection_rate == pytest.approx(0.5)


def test_audit_detects_silent_requester():
    outcome = run_hit(small_task(), [GOOD, GOOD], requester_evaluates=False)
    log = GoldAuditLog(outcome.chain)
    record = next(iter(log.audit_tasks().values()))
    assert not record.golden_opened
    assert len(record.paid_workers) == 2
    reputation = log.reputation()["requester"]
    assert reputation.silent_tasks == 1
    assert any("without opening golds" in flag for flag in reputation.flags)


def test_reputation_flags_mass_rejecter():
    system = Dragoon()
    system.fund("mallory", 300)
    for i in range(3):
        system.run_task(
            "mallory", small_task(), [BAD, BAD],
            worker_labels=["w%d-a" % i, "w%d-b" % i],
        )
    log = GoldAuditLog(system.chain)
    reputation = log.reputation()["mallory"]
    assert reputation.tasks == 3
    assert reputation.workers_rejected == 6
    assert reputation.rejection_rate == 1.0
    assert reputation.is_suspicious


def test_reputation_clean_requester_unflagged():
    system = Dragoon()
    system.fund("alice", 200)
    system.run_task("alice", small_task(), [GOOD, GOOD],
                    worker_labels=["w0", "w1"])
    system.run_task("alice", small_task(), [GOOD, BAD],
                    worker_labels=["w2", "w3"])
    reputation = GoldAuditLog(system.chain).reputation()["alice"]
    assert reputation.tasks == 2
    assert reputation.rejection_rate == pytest.approx(0.25)
    assert not reputation.is_suspicious


def test_divergence_from_consensus():
    outcome = run_hit(small_task(), [GOOD, GOOD])
    log = GoldAuditLog(outcome.chain)
    record = next(iter(log.audit_tasks().values()))
    # Accepted submissions agree with the golds: divergence 0.
    assert log.divergence_from_consensus(record, [GOOD, GOOD]) == 0.0
    # A hypothetical consensus that contradicts every gold: divergence 1.
    assert log.divergence_from_consensus(record, [BAD, BAD]) == 1.0


def test_divergence_without_golden_is_zero():
    outcome = run_hit(small_task(), [GOOD, GOOD], requester_evaluates=False)
    log = GoldAuditLog(outcome.chain)
    record = next(iter(log.audit_tasks().values()))
    assert log.divergence_from_consensus(record, [GOOD]) == 0.0
