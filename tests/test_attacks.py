"""Attack-scenario integration tests (paper §I, §IV adversary model).

Each test runs one of the attacks the protocol is designed to survive
and asserts the honest parties keep their guarantees.
"""

import pytest

from repro.chain.chain import Chain
from repro.core.adversary import (
    CopyCatWorker,
    FalseReportingRequester,
    LateJoinerWorker,
    NoRevealWorker,
    OutOfRangeWorker,
    ReplayProofRequester,
    WrongGoldenRequester,
    front_running_scheduler,
)
from repro.core.requester import RequesterClient
from repro.core.worker import WorkerClient
from repro.errors import ProtocolError
from repro.storage.swarm import SwarmStore
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


def _setup(task=None, scheduler=None, requester_cls=RequesterClient):
    task = task if task is not None else small_task()
    chain = Chain(scheduler=scheduler)
    swarm = SwarmStore()
    requester = requester_cls("req", task, chain, swarm)
    assert requester.publish().succeeded
    return task, chain, swarm, requester


def _finish(chain, requester, evaluate=True):
    if evaluate:
        requester.evaluate_all()
    chain.mine_block()
    requester.send_finalize()
    chain.mine_block()


# ---------------------------------------------------------------------------
# Free-riding (workers)
# ---------------------------------------------------------------------------


def test_copycat_commit_is_rejected_as_duplicate():
    task, chain, swarm, requester = _setup()
    victim = WorkerClient("victim", chain, swarm, answers=GOOD)
    victim.discover(requester.contract_name)
    victim.send_commit()
    chain.mine_block()

    copier = CopyCatWorker("copier", chain, swarm, victim=victim)
    copier.discover(requester.contract_name)
    copier.send_commit()
    block = chain.mine_block()
    assert not block.receipts[0].succeeded
    assert "duplicate" in block.receipts[0].revert_reason


def test_front_running_copycat_still_earns_nothing():
    """Even if the rushing adversary delivers the copied commitment
    first, the copier cannot open it and is never paid."""
    task, chain, swarm, requester = _setup()
    victim = WorkerClient("victim", chain, swarm, answers=GOOD)
    victim.discover(requester.contract_name)

    copier = CopyCatWorker("copier", chain, swarm, victim=victim)
    copier.discover(requester.contract_name)

    victim.send_commit()  # enters the mempool first...
    copier.send_commit()  # ...but the adversary reorders below.
    chain.scheduler = front_running_scheduler(copier.address)
    block = chain.mine_block()
    by_sender = {r.transaction.sender.label: r for r in block.receipts}
    assert by_sender["copier"].succeeded  # the stolen commit landed first
    assert not by_sender["victim"].succeeded  # the victim got bounced

    # The copier cannot reveal (knows neither key nor ciphertexts)...
    with pytest.raises(ProtocolError):
        copier.send_reveal()
    # ...and the griefed task never fills its K slots, so the requester
    # cancels and recovers the budget.  The copier earned nothing.
    chain.mine_block()
    chain.mine_block()
    chain.send(requester.address, requester.contract_name, "cancel")
    block = chain.mine_block()
    assert block.receipts[0].succeeded, block.receipts[0].revert_reason
    assert chain.ledger.balance_of(copier.address) == 0
    assert chain.ledger.balance_of(requester.address) == task.parameters.budget


def test_late_joiner_cannot_enter_after_reveals():
    task, chain, swarm, requester = _setup()
    workers = [
        WorkerClient("w%d" % i, chain, swarm, answers=GOOD) for i in range(2)
    ]
    for worker in workers:
        worker.discover(requester.contract_name)
        worker.send_commit()
    chain.mine_block()
    for worker in workers:
        worker.send_reveal()
    chain.mine_block()

    # Ciphertexts are now public; the late joiner copies them...
    late = LateJoinerWorker("late", chain, swarm)
    late.discover(requester.contract_name)
    assert late.copy_revealed_ciphertexts() is not None
    late.send_commit()
    block = chain.mine_block()
    # ...but the commit phase closed at K commitments.
    assert not block.receipts[0].succeeded


def test_no_reveal_worker_forfeits_payment_only():
    task, chain, swarm, requester = _setup()
    honest = WorkerClient("honest", chain, swarm, answers=GOOD)
    silent = NoRevealWorker("silent", chain, swarm, answers=GOOD)
    for worker in (honest, silent):
        worker.discover(requester.contract_name)
        worker.send_commit()
    chain.mine_block()
    honest.send_reveal()
    chain.mine_block()
    _finish(chain, requester)
    assert chain.ledger.balance_of(honest.address) == 50
    assert chain.ledger.balance_of(silent.address) == 0
    assert chain.ledger.balance_of(requester.address) == 50


def test_out_of_range_worker_rejected_with_evidence():
    task, chain, swarm, requester = _setup()
    honest = WorkerClient("honest", chain, swarm, answers=GOOD)
    cheat = OutOfRangeWorker("cheat", chain, swarm, answers=list(GOOD),
                             bad_position=3, bad_value=42)
    for worker in (honest, cheat):
        worker.discover(requester.contract_name)
        worker.send_commit()
    chain.mine_block()
    for worker in (honest, cheat):
        worker.send_reveal()
    chain.mine_block()
    _finish(chain, requester)
    assert chain.ledger.balance_of(honest.address) == 50
    assert chain.ledger.balance_of(cheat.address) == 0
    outranged = chain.events_named("outranged")
    assert len(outranged) == 1
    assert outranged[0].payload["index"] == 3


# ---------------------------------------------------------------------------
# False-reporting (requester)
# ---------------------------------------------------------------------------


def _run_two_workers(requester_cls, answers=(GOOD, GOOD)):
    task, chain, swarm, requester = _setup(requester_cls=requester_cls)
    workers = [
        WorkerClient("w%d" % i, chain, swarm, answers=list(a))
        for i, a in enumerate(answers)
    ]
    for worker in workers:
        worker.discover(requester.contract_name)
        worker.send_commit()
    chain.mine_block()
    for worker in workers:
        worker.send_reveal()
    chain.mine_block()
    _finish(chain, requester)
    return chain, requester, workers


def test_false_reporting_requester_pays_anyway():
    """Claiming quality 0 with a bogus proof cannot reap free data."""
    chain, requester, workers = _run_two_workers(FalseReportingRequester)
    for worker in workers:
        assert chain.ledger.balance_of(worker.address) == 50
    assert chain.ledger.balance_of(requester.address) == 0


def test_replayed_proof_entries_do_not_reject():
    """Padding a PoQoEA proof with duplicate entries fails verification,
    so the honest worker is paid (Fig. 4 semantics)."""
    # Workers miss one gold (quality 2 of 3, still >= theta): a cheating
    # requester tries to reject by replaying the single mismatch.
    near = [0, 0, 1] + [0] * 7
    chain, requester, workers = _run_two_workers(ReplayProofRequester, (near, near))
    for worker in workers:
        assert chain.ledger.balance_of(worker.address) == 50


def test_wrong_golden_opening_defaults_to_paying_everyone():
    """A requester whose golden message fails the commitment check is
    treated as silent: every revealed worker is paid."""
    chain, requester, workers = _run_two_workers(WrongGoldenRequester, (BAD, BAD))
    for worker in workers:
        assert chain.ledger.balance_of(worker.address) == 50
    assert chain.ledger.balance_of(requester.address) == 0


# ---------------------------------------------------------------------------
# Network adversary
# ---------------------------------------------------------------------------


def test_reordering_reveals_changes_nothing():
    """Reordering the reveal phase cannot affect payments: submissions
    were bound at commit time."""
    from repro.chain.network import ReverseScheduler

    task, chain, swarm, requester = _setup(scheduler=ReverseScheduler())
    workers = [
        WorkerClient("w%d" % i, chain, swarm, answers=a)
        for i, a in enumerate([GOOD, BAD])
    ]
    for worker in workers:
        worker.discover(requester.contract_name)
        worker.send_commit()
    chain.mine_block()
    for worker in workers:
        worker.send_reveal()
    chain.mine_block()
    _finish(chain, requester)
    assert chain.ledger.balance_of(workers[0].address) == 50
    assert chain.ledger.balance_of(workers[1].address) == 0


def test_commitments_hide_answers_from_mempool_observers():
    """The rushing adversary sees commit payloads before delivery; they
    must be 32-byte digests, not ciphertexts or answers."""
    task, chain, swarm, requester = _setup()
    worker = WorkerClient("w", chain, swarm, answers=GOOD)
    worker.discover(requester.contract_name)
    worker.send_commit()
    pending = chain.mempool.pending
    assert len(pending) == 1
    assert len(pending[0].payload) == 32
    assert pending[0].payload != bytes(GOOD)
