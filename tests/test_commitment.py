"""Hash commitments: correctness, binding, key handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.commitment import (
    KEY_BYTES,
    Commitment,
    commit,
    generate_key,
    open_commitment,
)
from repro.crypto.random_oracle import RandomOracle


def test_commit_open_roundtrip():
    commitment, key = commit(b"message")
    assert open_commitment(commitment, b"message", key)


def test_wrong_message_rejected():
    commitment, key = commit(b"message")
    assert not open_commitment(commitment, b"other", key)


def test_wrong_key_rejected():
    commitment, _ = commit(b"message")
    assert not open_commitment(commitment, b"message", generate_key())


@given(st.binary(max_size=200), st.binary(max_size=200))
@settings(max_examples=40)
def test_binding_distinct_messages(a, b):
    if a == b:
        return
    key = b"\x11" * KEY_BYTES
    commitment_a, _ = commit(a, key)
    commitment_b, _ = commit(b, key)
    assert commitment_a.digest != commitment_b.digest


def test_hiding_same_message_fresh_keys():
    a, _ = commit(b"answer")
    b, _ = commit(b"answer")
    assert a.digest != b.digest  # fresh blinding keys


def test_deterministic_under_fixed_key():
    key = b"\x22" * KEY_BYTES
    a, _ = commit(b"answer", key)
    b, _ = commit(b"answer", key)
    assert a.digest == b.digest


def test_key_length_enforced():
    with pytest.raises(ValueError):
        commit(b"m", b"short")
    commitment, key = commit(b"m")
    assert not open_commitment(commitment, b"m", b"short")


def test_commitment_digest_length_enforced():
    with pytest.raises(ValueError):
        Commitment(b"short")


def test_generate_key_is_32_bytes_and_fresh():
    a, b = generate_key(), generate_key()
    assert len(a) == KEY_BYTES
    assert a != b


def test_commit_with_custom_oracle():
    oracle = RandomOracle()
    commitment, key = commit(b"m", oracle=oracle)
    assert open_commitment(commitment, b"m", key, oracle=oracle)


def test_hex_rendering():
    commitment, _ = commit(b"m")
    assert commitment.hex() == commitment.digest.hex()
