"""The interactive sigma protocol: completeness, extraction, HVZK."""

import pytest

from repro.crypto.elgamal import keygen
from repro.crypto.sigma import (
    SigmaProver,
    SigmaTranscript,
    extract_secret,
    fresh_challenge,
    run_interactive,
    simulate_transcript,
    verify_transcript,
)
from repro.errors import ProofError


@pytest.fixture(scope="module")
def instance():
    pk, sk = keygen(secret=0x516A)
    ciphertext = pk.encrypt(1)
    return pk, sk, ciphertext


def test_completeness(instance):
    pk, sk, ciphertext = instance
    transcript = run_interactive(sk, ciphertext, claim=1)
    assert verify_transcript(pk, 1, ciphertext, transcript)


def test_wrong_claim_rejected(instance):
    pk, sk, ciphertext = instance
    transcript = run_interactive(sk, ciphertext, claim=1)
    assert not verify_transcript(pk, 0, ciphertext, transcript)


def test_move3_requires_move1(instance):
    _, sk, ciphertext = instance
    prover = SigmaProver(sk, ciphertext)
    with pytest.raises(ProofError):
        prover.move3(fresh_challenge())


def test_special_soundness_extracts_key(instance):
    """Answering two challenges on one commitment leaks the secret —
    the knowledge extractor of the soundness proof."""
    pk, sk, ciphertext = instance
    prover = SigmaProver(sk, ciphertext)
    commitment_a, commitment_b = prover.move1()
    c1, c2 = 11111, 22222
    t1 = SigmaTranscript(commitment_a, commitment_b, c1, prover.move3(c1))
    t2 = SigmaTranscript(commitment_a, commitment_b, c2, prover.move3(c2))
    assert verify_transcript(pk, 1, ciphertext, t1)
    assert verify_transcript(pk, 1, ciphertext, t2)
    assert extract_secret(t1, t2) == sk.k


def test_extraction_requires_shared_first_move(instance):
    _, sk, ciphertext = instance
    t1 = run_interactive(sk, ciphertext, claim=1)
    t2 = run_interactive(sk, ciphertext, claim=1)
    with pytest.raises(ProofError):
        extract_secret(t1, t2)


def test_extraction_requires_distinct_challenges(instance):
    _, sk, ciphertext = instance
    transcript = run_interactive(sk, ciphertext, claim=1, challenge=777)
    with pytest.raises(ProofError):
        extract_secret(transcript, transcript)


def test_hvzk_simulator_produces_accepting_transcripts(instance):
    """The simulator works with no secret key and no oracle programming."""
    pk, _, ciphertext = instance
    for _ in range(3):
        forged = simulate_transcript(pk, 1, ciphertext)
        assert verify_transcript(pk, 1, ciphertext, forged)


def test_simulated_and_real_transcripts_same_shape(instance):
    """On a fixed challenge, real and simulated transcripts are both
    accepting and structurally identical — the HVZK argument."""
    pk, sk, ciphertext = instance
    challenge = fresh_challenge()
    real = run_interactive(sk, ciphertext, claim=1, challenge=challenge)
    fake = simulate_transcript(pk, 1, ciphertext, challenge=challenge)
    assert verify_transcript(pk, 1, ciphertext, real)
    assert verify_transcript(pk, 1, ciphertext, fake)
    assert real.challenge == fake.challenge
    # Responses are both uniform field elements; commitments both points.
    assert real != fake  # overwhelmingly


def test_simulator_cannot_help_on_false_statements(instance):
    """Simulated transcripts for a FALSE claim verify against that false
    claim only in the interactive HVZK sense — they do not transfer to
    the true claim, so soundness is intact."""
    pk, _, ciphertext = instance  # ciphertext encrypts 1
    forged_for_zero = simulate_transcript(pk, 0, ciphertext)
    assert verify_transcript(pk, 0, ciphertext, forged_for_zero)  # HVZK artifact
    assert not verify_transcript(pk, 1, ciphertext, forged_for_zero)
