"""Gas regression pins: the Table III numbers must not drift silently.

These are golden-value tests on the gas model.  If a change to the
contract or the gas schedule moves a headline number outside the band
we validated against the paper, a test fails and EXPERIMENTS.md needs
updating — exactly how a gas regression would be caught in a real
contract repository.
"""

import pytest

from repro.chain.gas import PAPER_PRICING
from repro.core.protocol import run_hit
from repro.core.task import make_imagenet_task, sample_worker_answers


@pytest.fixture(scope="module")
def imagenet_outcome():
    task = make_imagenet_task()
    answers = [sample_worker_answers(task, 0.97, seed=i) for i in range(4)]
    outcome = run_hit(task, answers)
    assert all(value > 0 for value in outcome.payments().values())
    return outcome


def test_publish_gas_band(imagenet_outcome):
    """Paper: ~1293k."""
    assert 1_150_000 < imagenet_outcome.gas.publish < 1_450_000


def test_submit_gas_band(imagenet_outcome):
    """Paper: ~2830k (ours runs ~9% leaner; see EXPERIMENTS.md §dev 4)."""
    for worker in imagenet_outcome.workers:
        submit = imagenet_outcome.gas.submit_cost(worker.label)
        assert 2_300_000 < submit < 3_200_000


def test_overall_usd_band(imagenet_outcome):
    """Paper best case: $2.09; must stay in the $1.8-$2.4 band and under
    the $4 MTurk fee."""
    usd = PAPER_PRICING.to_usd(imagenet_outcome.gas.total)
    assert 1.8 < usd < 2.4
    assert usd < 4.0


def test_rejection_gas_band():
    """Paper: ~180k for a 3-mismatch rejection."""
    task = make_imagenet_task()
    answers = [sample_worker_answers(task, 0.97, seed=i) for i in range(3)]
    # One worker misses exactly 3 golds.
    sheet = list(task.ground_truth)
    for index in task.gold_indexes[:3]:
        sheet[index] = 1 - sheet[index]
    answers.append(sheet)
    outcome = run_hit(task, answers)
    rejections = list(outcome.gas.rejections.values())
    assert len(rejections) == 1
    assert 140_000 < rejections[0] < 220_000


def test_commit_gas_small_and_flat(imagenet_outcome):
    """Commits are 32-byte-digest transactions: tens of k gas.  (The
    K-th commit also pays for the phase transition and all_committed
    event, so the band reaches slightly higher.)"""
    for cost in imagenet_outcome.gas.commits.values():
        assert 21_000 < cost < 100_000
