"""The generic-ZKP (SNARK-verified) HIT contract baseline.

Groth16 operations cost ~1 s each in pure Python, so this module builds
one setup and runs a single end-to-end scenario with both a valid and an
invalid rejection.
"""

import pytest

from repro.baseline.circuits import quality_statement_circuit
from repro.baseline.generic_hit import GenericZKPHITContract
from repro.baseline.groth16 import Proof, prove, setup
from repro.baseline.qap import QAP
from repro.chain.chain import Chain
from repro.chain.gas import pairing_cost
from repro.core.requester import RequesterClient
from repro.core.worker import WorkerClient
from repro.crypto.commitment import commit as make_commitment
from repro.crypto.curve import G1Point
from repro.storage.swarm import SwarmStore
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


@pytest.fixture(scope="module")
def scenario():
    """A settled generic-baseline task with one SNARK rejection."""
    task = small_task()
    chain, swarm = Chain(), SwarmStore()
    requester = RequesterClient("req", task, chain, swarm)

    # Build the quality circuit and its CRS for this task's gold set.
    # The bad worker's gold-position answers are all 1 vs golds all 0.
    circuit = quality_statement_circuit(
        task.gold_answers, claimed_quality=0, private_answers=[1, 1, 1]
    )
    assert circuit.is_satisfied()
    qap = QAP.from_r1cs(circuit)
    proving_key, verifying_key = setup(qap)

    # Deploy the generic contract (mirrors RequesterClient.publish).
    task_digest = swarm.put(task.questions_blob())
    commitment, requester._golden_key = make_commitment(task.golden_blob())
    params_json = task.parameters.to_json()
    contract = GenericZKPHITContract("generic-hit")
    contract.set_verifying_key(verifying_key)
    receipt = chain.deploy(
        contract,
        requester.address,
        args=(params_json, requester.public_key.to_bytes(),
              commitment.digest, task_digest),
        payload=params_json.encode() + commitment.digest + task_digest,
    )
    assert receipt.succeeded
    requester.contract_name = "generic-hit"

    workers = [
        WorkerClient("good", chain, swarm, answers=GOOD),
        WorkerClient("bad", chain, swarm, answers=BAD),
    ]
    for worker in workers:
        worker.discover("generic-hit")
        worker.send_commit()
    chain.mine_block()
    for worker in workers:
        worker.send_reveal()
    chain.mine_block()

    requester.send_golden()
    snark_proof = prove(proving_key, qap, circuit.full_assignment())
    publics = circuit.public_values()
    chain.send(
        requester.address, "generic-hit", "evaluate_generic",
        args=(workers[1].address, 0, snark_proof, publics),
        payload=b"\x01" * (256 + 32 * len(publics)),
    )
    evaluate_block = chain.mine_block()
    requester.send_finalize()
    chain.mine_block()
    return (task, chain, requester, workers, contract, evaluate_block,
            proving_key, qap, circuit, snark_proof, publics)


def test_snark_rejection_works(scenario):
    _, chain, _, workers, contract, _, _, _, _, _, _ = scenario
    assert chain.ledger.balance_of(workers[0].address) == 50
    assert chain.ledger.balance_of(workers[1].address) == 0
    assert contract.verdict_of(workers[1].address) == "rejected-quality"


def test_snark_rejection_gas_includes_pairings(scenario):
    """The baseline rejection must carry the 4-pairing price (~181k gas
    before the rest) — more than a whole PoQoEA rejection."""
    _, _, _, _, _, evaluate_block, _, _, _, _, _ = scenario
    generic_receipts = [
        r for r in evaluate_block.receipts
        if r.transaction.method == "evaluate_generic"
    ]
    assert len(generic_receipts) == 1
    receipt = generic_receipts[0]
    assert receipt.succeeded
    assert receipt.gas_breakdown["pairing"] == pairing_cost(4)
    assert receipt.gas_used > 200_000  # > the ~170k PoQoEA rejection


def test_wrong_publics_force_payment(scenario):
    """Publics inconsistent with the opened golds => worker paid
    (Fig. 4 semantics carried over to the baseline)."""
    (task, chain, requester, workers, contract, _, proving_key, qap,
     circuit, snark_proof, publics) = scenario
    # Tamper: claim different gold answers in the publics.
    bad_publics = [1 - p for p in publics[:-1]] + [publics[-1]]
    # The 'good' worker is still unadjudicated in the evaluate window?
    # The window has closed in the shared scenario; assert via direct
    # verification logic instead: the contract's publics check.
    gold_answers = contract._memory_read("gold_answers")
    expected = list(gold_answers) + [0]
    assert list(bad_publics) != expected


def test_tampered_snark_proof_rejected_by_verifier(scenario):
    (_, _, _, _, _, _, _, _, circuit, snark_proof, publics) = scenario
    from repro.baseline.groth16 import verify

    tampered = Proof(
        snark_proof.a + G1Point.generator(), snark_proof.b, snark_proof.c
    )
    vk = None
    # Re-derive the vk from the contract storage of the scenario.
    # (verify() is pure; the contract path is covered above.)
    # Use the scenario's contract:
    # pylint: disable=protected-access
    contract = scenario[4]
    vk = contract._memory_read("groth16_vk")
    assert verify(vk, publics, snark_proof)
    assert not verify(vk, publics, tampered)
