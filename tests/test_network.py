"""Mempool and the adversarial (rushing/reordering) scheduler."""

import pytest

from repro.chain.network import (
    FifoScheduler,
    Mempool,
    ReverseScheduler,
    RushingScheduler,
)
from repro.chain.transactions import Transaction
from repro.errors import ChainError
from repro.ledger.accounts import Address


def _tx(label: str) -> Transaction:
    return Transaction(
        sender=Address.from_label(label), contract="c", method="m"
    )


def test_fifo_preserves_order():
    pool = Mempool()
    txs = [_tx("a"), _tx("b"), _tx("c")]
    for tx in txs:
        pool.submit(tx)
    assert pool.drain(FifoScheduler()) == txs
    assert len(pool) == 0


def test_reverse_scheduler():
    pool = Mempool()
    txs = [_tx("a"), _tx("b")]
    for tx in txs:
        pool.submit(tx)
    assert pool.drain(ReverseScheduler()) == list(reversed(txs))


def test_rushing_scheduler_custom_order():
    pool = Mempool()
    a, b, c = _tx("a"), _tx("b"), _tx("c")
    for tx in (a, b, c):
        pool.submit(tx)
    rushing = RushingScheduler(lambda pending: [c, a, b])
    assert pool.drain(rushing) == [c, a, b]


def test_rushing_scheduler_cannot_drop():
    pool = Mempool()
    a, b = _tx("a"), _tx("b")
    pool.submit(a)
    pool.submit(b)
    dropper = RushingScheduler(lambda pending: [pending[0]])
    with pytest.raises(ChainError):
        pool.drain(dropper)


def test_rushing_scheduler_cannot_duplicate():
    pool = Mempool()
    a, b = _tx("a"), _tx("b")
    pool.submit(a)
    pool.submit(b)
    duper = RushingScheduler(lambda pending: [pending[0], pending[0]])
    with pytest.raises(ChainError):
        pool.drain(duper)


def test_delay_holds_for_one_round():
    pool = Mempool()
    a, b = _tx("a"), _tx("b")
    pool.submit(a)
    pool.submit(b)
    pool.delay(a)
    first = pool.drain()
    # Synchrony: the delayed message is still delivered in this drain
    # (it re-enters ahead), modelling "by the next clock period".
    assert set(t.nonce for t in first) == {a.nonce, b.nonce}


def test_delay_unknown_transaction():
    pool = Mempool()
    with pytest.raises(ChainError):
        pool.delay(_tx("ghost"))


def test_pending_view_is_copy():
    pool = Mempool()
    tx = _tx("a")
    pool.submit(tx)
    view = pool.pending
    view.clear()
    assert len(pool) == 1


def test_drain_empties_pool():
    pool = Mempool()
    pool.submit(_tx("a"))
    pool.drain()
    assert pool.drain() == []
