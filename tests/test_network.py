"""Mempool and the adversarial (rushing/reordering) scheduler."""

import pytest

from repro.chain.network import (
    FifoScheduler,
    Mempool,
    ReverseScheduler,
    RushingScheduler,
)
from repro.chain.transactions import Transaction
from repro.errors import ChainError
from repro.ledger.accounts import Address


def _tx(label: str) -> Transaction:
    return Transaction(
        sender=Address.from_label(label), contract="c", method="m"
    )


def test_fifo_preserves_order():
    pool = Mempool()
    txs = [_tx("a"), _tx("b"), _tx("c")]
    for tx in txs:
        pool.submit(tx)
    assert pool.drain(FifoScheduler()) == txs
    assert len(pool) == 0


def test_reverse_scheduler():
    pool = Mempool()
    txs = [_tx("a"), _tx("b")]
    for tx in txs:
        pool.submit(tx)
    assert pool.drain(ReverseScheduler()) == list(reversed(txs))


def test_rushing_scheduler_custom_order():
    pool = Mempool()
    a, b, c = _tx("a"), _tx("b"), _tx("c")
    for tx in (a, b, c):
        pool.submit(tx)
    rushing = RushingScheduler(lambda pending: [c, a, b])
    assert pool.drain(rushing) == [c, a, b]


def test_rushing_scheduler_cannot_drop():
    pool = Mempool()
    a, b = _tx("a"), _tx("b")
    pool.submit(a)
    pool.submit(b)
    dropper = RushingScheduler(lambda pending: [pending[0]])
    with pytest.raises(ChainError):
        pool.drain(dropper)


def test_rushing_scheduler_cannot_duplicate():
    pool = Mempool()
    a, b = _tx("a"), _tx("b")
    pool.submit(a)
    pool.submit(b)
    duper = RushingScheduler(lambda pending: [pending[0], pending[0]])
    with pytest.raises(ChainError):
        pool.drain(duper)


def test_delay_holds_for_one_round():
    pool = Mempool()
    a, b = _tx("a"), _tx("b")
    pool.submit(a)
    pool.submit(b)
    pool.delay(a)
    first = pool.drain()
    # Synchrony: the delayed message is still delivered in this drain
    # (it re-enters ahead), modelling "by the next clock period".
    assert set(t.nonce for t in first) == {a.nonce, b.nonce}


def test_delay_unknown_transaction():
    pool = Mempool()
    with pytest.raises(ChainError):
        pool.delay(_tx("ghost"))


def test_delayed_transaction_reenters_ahead_of_hostile_scheduler():
    """The delayed message is back in the deliverable list *before* the
    rushing adversary picks an order — it can be reordered like any
    other pending message, but never withheld from the drain."""
    pool = Mempool()
    a, b, c = _tx("a"), _tx("b"), _tx("c")
    for tx in (a, b, c):
        pool.submit(tx)
    pool.delay(a)
    seen = []

    def hostile(pending):
        seen.extend(pending)
        return list(reversed(pending))

    ordered = pool.drain(RushingScheduler(hostile))
    assert a in seen  # the adversary was shown the delayed message
    assert seen[0] is a  # ... at the head of the deliverable list
    assert ordered == [c, b, a]  # and could still reorder it


def test_delaying_twice_violates_synchrony():
    """Synchrony bounds delay to one period: once delayed, the message is
    no longer pending, so a second delay is rejected."""
    pool = Mempool()
    tx = _tx("a")
    pool.submit(tx)
    pool.delay(tx)
    with pytest.raises(ChainError):
        pool.delay(tx)
    # After the drain delivers it, it cannot be delayed retroactively.
    assert pool.drain() == [tx]
    with pytest.raises(ChainError):
        pool.delay(tx)


def test_delaying_bystander_keeps_requester_nonce_order():
    """Fig. 4's evaluate phase: delaying another sender's message between
    the requester's ``golden`` and ``evaluate`` cannot swap them.

    The adversary delays a worker transaction and then schedules it
    between the requester's two messages while reversing them; per-sender
    nonce order is restored after the permutation, so ``golden`` still
    lands first and the ``evaluate`` it authorizes stays valid."""
    pool = Mempool()
    requester = Address.from_label("requester")
    golden = Transaction(sender=requester, contract="hit", method="golden")
    evaluate = Transaction(sender=requester, contract="hit", method="evaluate")
    bystander = _tx("worker")
    for tx in (golden, evaluate, bystander):
        pool.submit(tx)
    pool.delay(bystander)

    def wedge(pending):
        # evaluate first, the delayed bystander in between, golden last.
        return [evaluate, bystander, golden]

    ordered = pool.drain(RushingScheduler(wedge))
    methods = [t.method for t in ordered if t.sender == requester]
    assert methods == ["golden", "evaluate"]
    assert ordered[1] is bystander  # the adversary kept the wedge slot


def test_pending_view_is_copy():
    pool = Mempool()
    tx = _tx("a")
    pool.submit(tx)
    view = pool.pending
    view.clear()
    assert len(pool) == 1


def test_drain_empties_pool():
    pool = Mempool()
    pool.submit(_tx("a"))
    pool.drain()
    assert pool.drain() == []
