"""Fee analysis and table rendering."""

import pytest

from repro.analysis.costs import (
    build_handling_fee_table,
    gas_summary,
    mturk_handling_fee,
)
from repro.analysis.tables import (
    format_bytes,
    format_gas,
    format_seconds,
    render_table,
)
from repro.chain.gas import GasPricing
from repro.core.protocol import GasReport


def _report(publish=1_293_000, submit=2_830_000, reject=180_000):
    report = GasReport(publish=publish)
    for i in range(4):
        report.commits["w%d" % i] = submit // 10
        report.reveals["w%d" % i] = submit - submit // 10
    report.golden = 90_000
    report.rejections = {"w3": reject}
    report.finalize = 100_000
    return report


def test_mturk_fee_small_batch():
    assert mturk_handling_fee(20.0, 4) == pytest.approx(4.0)


def test_mturk_fee_large_batch_rate():
    assert mturk_handling_fee(20.0, 10) == pytest.approx(8.0)


def test_mturk_fee_floor():
    assert mturk_handling_fee(0.1, 5) == pytest.approx(0.05)


def test_handling_fee_table_rows():
    table = build_handling_fee_table(_report())
    operations = [row.operation for row in table.rows]
    assert operations == [
        "Publish task (by requester)",
        "Submit answers (by worker)",
        "Verify PoQoEA to reject an answer",
        "Overall (best-case: reject no submission)",
    ]
    assert table.row("Publish task (by requester)").gas == 1_293_000
    assert table.row("Submit answers (by worker)").gas == 2_830_000


def test_handling_fee_usd_matches_paper_rates():
    table = build_handling_fee_table(_report())
    publish = table.row("Publish task (by requester)")
    assert publish.usd == pytest.approx(0.22, abs=0.01)


def test_worst_case_row_added():
    best = _report()
    worst = _report(reject=200_000)
    table = build_handling_fee_table(best, worst)
    assert any("worst-case" in row.operation for row in table.rows)


def test_missing_row_raises():
    table = build_handling_fee_table(_report())
    with pytest.raises(KeyError):
        table.row("nope")


def test_gas_summary_fields():
    summary = gas_summary(_report())
    assert "publish" in summary and "total" in summary
    assert "1293k" in summary["publish"]


def test_render_table_layout():
    text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("+-")
    assert "| 333" in text
    # all separator lines equal width
    assert len({len(line) for line in lines[1:]}) == 1


def test_format_helpers():
    assert format_seconds(0.005) == "5.0 ms"
    assert format_seconds(12.0) == "12.0 s"
    assert format_seconds(300.0) == "5.0 min"
    assert format_bytes(500 * 1024) == "500 KiB"
    assert format_bytes(53 * 1024**2) == "53.0 MiB"
    assert format_bytes(10.3 * 1024**3) == "10.30 GiB"
    assert format_gas(180_400) == "~180k"


def test_pricing_is_configurable():
    table = build_handling_fee_table(
        _report(), pricing=GasPricing(gwei_per_gas=3.0, usd_per_ether=230.0)
    )
    publish = table.row("Publish task (by requester)")
    assert publish.usd == pytest.approx(1_293_000 * 3e-9 * 230.0)
