"""Cross-feature integration: the extension modules working together.

These tests chain the extension features end to end: aggregation over a
settled task's real ciphertexts, the marketplace reading a Dragoon
deployment that the audit log also scores, and batch verification of
the proofs a real rejection produced.
"""

from repro.core.aggregation import (
    accuracy_against_truth,
    binary_consensus_from_tally,
    homomorphic_tally,
)
from repro.core.audit import GoldAuditLog
from repro.core.marketplace import TaskMarketplace
from repro.core.protocol import run_hit
from repro.crypto.vpke import verify_decryption_batch
from repro.dragoon import Dragoon
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


def test_aggregate_settled_task_submissions():
    """Consensus labels from the ciphertexts a real task collected."""
    task = small_task(num_workers=3, budget=99)
    answers = [GOOD, GOOD, [0] * 9 + [1]]
    outcome = run_hit(task, answers)
    submissions = outcome.requester.collect_submissions()

    paid_vectors = []
    for worker in outcome.workers:
        if outcome.payment_of(worker) > 0:
            ciphertexts, _ = outcome.requester.decrypt_submission(
                submissions[worker.address]
            )
            paid_vectors.append(ciphertexts)
    assert len(paid_vectors) == 3

    tallies = homomorphic_tally(outcome.requester.secret_key, paid_vectors)
    consensus = binary_consensus_from_tally(tallies, len(paid_vectors))
    assert accuracy_against_truth(list(consensus.labels), task.ground_truth) == 1.0


def test_marketplace_and_audit_share_one_deployment():
    """The marketplace's reputation column agrees with the audit log."""
    system = Dragoon()
    system.fund("alice", 200)
    system.run_task("alice", small_task(), [GOOD, BAD],
                    worker_labels=["w0", "w1"])
    system.publish_task("alice", small_task(budget=100))

    audit = GoldAuditLog(system.chain).reputation()["alice"]
    market = TaskMarketplace(system.chain)
    listing = market.listings()[0]
    assert listing.requester_reputation is not None
    assert listing.requester_reputation.rejection_rate == audit.rejection_rate
    assert not listing.requester_flagged


def test_batch_verify_a_real_rejection_proof():
    """The VPKE proofs inside a protocol-produced PoQoEA rejection batch-
    verify against the on-chain ciphertexts."""
    task = small_task()
    outcome = run_hit(task, [GOOD, BAD])
    evaluate_txs = [
        r.transaction
        for r in outcome.receipts
        if r.transaction.method == "evaluate" and r.succeeded
    ]
    assert len(evaluate_txs) == 1
    worker, chi, proof, gold_chunks = evaluate_txs[0].args
    assert chi == 0 and len(proof.entries) == 3

    from repro.crypto.elgamal import Ciphertext

    statements = [
        (entry.answer, Ciphertext.from_bytes(gold_chunks[entry.index]), entry.proof)
        for entry in proof.entries
    ]
    assert verify_decryption_batch(outcome.requester.public_key, statements)


def test_explorer_sees_facade_tasks():
    from repro.chain.explorer import ChainExplorer

    system = Dragoon()
    system.fund("alice", 100)
    outcome = system.run_task("alice", small_task(), [GOOD, GOOD],
                              worker_labels=["w0", "w1"])
    explorer = ChainExplorer(system.chain)
    listing = explorer.transaction_log(contract=outcome.requester.contract_name)
    for method in ("commit", "reveal", "golden", "finalize"):
        assert method in listing
    assert explorer.gas_spent_by("alice") > 1_000_000
