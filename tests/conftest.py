"""Shared fixtures: session-scoped keys and small tasks keep tests fast."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core.task import HITTask, TaskParameters
from repro.crypto.elgamal import keygen
from tests.helpers import small_task


@pytest.fixture(scope="session")
def keypair():
    """One ElGamal key pair shared across crypto tests (keygen is cheap,
    but a fixed pair makes failures reproducible)."""
    return keygen(secret=0xDEADBEEFCAFE)


@pytest.fixture(scope="session")
def public_key(keypair):
    return keypair[0]


@pytest.fixture(scope="session")
def secret_key(keypair):
    return keypair[1]


@pytest.fixture
def tiny_task() -> HITTask:
    """10 binary questions, 3 golds (answers all 0), 2 workers, Θ = 2."""
    return small_task()


@pytest.fixture
def three_worker_task() -> HITTask:
    return small_task(num_workers=3, budget=99)
