"""Shared test helpers (importable, unlike conftest fixtures)."""

from __future__ import annotations

from repro.core.task import HITTask, TaskParameters


def small_task(
    num_questions: int = 10,
    num_golds: int = 3,
    num_workers: int = 2,
    threshold: int = 2,
    budget: int = 100,
    answer_range=(0, 1),
) -> HITTask:
    """A compact task for protocol tests: golds at positions 0..G-1, all
    gold answers equal to the first option."""
    gold_indexes = list(range(num_golds))
    gold_answers = [answer_range[0] for _ in range(num_golds)]
    ground_truth = [answer_range[0]] * num_questions
    parameters = TaskParameters(
        num_questions=num_questions,
        budget=budget,
        num_workers=num_workers,
        answer_range=tuple(answer_range),
        quality_threshold=threshold,
        num_golds=num_golds,
    )
    return HITTask(
        parameters,
        ["question %d" % i for i in range(num_questions)],
        gold_indexes,
        gold_answers,
        ground_truth,
    )
