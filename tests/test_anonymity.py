"""Anonymous participation: ring-authenticated commits on the contract."""

import pytest

from repro.chain.chain import Chain
from repro.core.anonymity import AnonymousHITContract, AnonymousWorkerIdentity
from repro.crypto.commitment import commit as make_commitment
from repro.crypto.ring import keygen_ring, ring_sign
from repro.storage.swarm import SwarmStore
from repro.core.requester import RequesterClient
from tests.helpers import small_task


class AnonymousHarness:
    """Deploys an AnonymousHITContract with an RA-published ring."""

    def __init__(self, ring_size=4):
        self.task = small_task()
        self.chain = Chain()
        self.swarm = SwarmStore()
        self.publics, self.secrets = keygen_ring(ring_size)
        self.requester = RequesterClient("req", self.task, self.chain, self.swarm)

        # Publish via an anonymous contract (mirrors RequesterClient.publish).
        task_digest = self.swarm.put(self.task.questions_blob())
        commitment, self.requester._golden_key = make_commitment(
            self.task.golden_blob()
        )
        params_json = self.task.parameters.to_json()
        contract = AnonymousHITContract("anon-hit")
        contract.set_worker_ring(self.publics)
        receipt = self.chain.deploy(
            contract,
            self.requester.address,
            args=(params_json, self.requester.public_key.to_bytes(),
                  commitment.digest, task_digest),
            payload=params_json.encode() + commitment.digest + task_digest,
        )
        assert receipt.succeeded, receipt.revert_reason
        self.requester.contract_name = "anon-hit"
        self.contract = contract

    def identity(self, index):
        return AnonymousWorkerIdentity(self.publics, self.secrets[index], index)

    def commit_as(self, pseudonym_label, identity, digest=None):
        digest = digest if digest is not None else b"\x11" * 32
        signature = identity.sign_commitment(digest, b"anon-hit")
        pseudonym = self.chain.register_account(pseudonym_label, 0)
        self.chain.send(
            pseudonym,
            "anon-hit",
            "commit_anonymous",
            args=(digest, signature),
            payload=digest + signature.tag.to_bytes(),
        )
        return pseudonym, signature


def test_anonymous_commit_accepted():
    h = AnonymousHarness()
    h.commit_as("pseudonym-a", h.identity(0), digest=b"\x01" * 32)
    block = h.chain.mine_block()
    assert block.receipts[0].succeeded, block.receipts[0].revert_reason
    assert len(h.contract.committed_workers()) == 1


def test_double_participation_linked_and_rejected():
    """The same ring member committing twice (fresh pseudonym, fresh
    digest) is caught by the linkability tag."""
    h = AnonymousHarness()
    h.commit_as("pseudonym-a", h.identity(0), digest=b"\x01" * 32)
    h.chain.mine_block()
    h.commit_as("pseudonym-b", h.identity(0), digest=b"\x02" * 32)
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded
    assert "tag already used" in block.receipts[0].revert_reason


def test_distinct_members_both_admitted():
    h = AnonymousHarness()
    h.commit_as("pseudonym-a", h.identity(0), digest=b"\x01" * 32)
    h.commit_as("pseudonym-b", h.identity(1), digest=b"\x02" * 32)
    block = h.chain.mine_block()
    assert all(r.succeeded for r in block.receipts)
    assert len(h.contract.committed_workers()) == 2


def test_non_member_rejected():
    h = AnonymousHarness()
    outsider_publics, outsider_secrets = keygen_ring(4)
    digest = b"\x03" * 32
    # The outsider signs against their own ring, not the installed one.
    forged = ring_sign(digest, outsider_publics, outsider_secrets[0], 0,
                       b"anon-hit")
    pseudonym = h.chain.register_account("outsider", 0)
    h.chain.send(pseudonym, "anon-hit", "commit_anonymous",
                 args=(digest, forged), payload=digest)
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded
    assert "ring signature invalid" in block.receipts[0].revert_reason


def test_signature_bound_to_digest():
    """Replaying a valid signature with a different commitment fails."""
    h = AnonymousHarness()
    identity = h.identity(2)
    signature = identity.sign_commitment(b"\x04" * 32, b"anon-hit")
    pseudonym = h.chain.register_account("replayer", 0)
    h.chain.send(pseudonym, "anon-hit", "commit_anonymous",
                 args=(b"\x05" * 32, signature), payload=b"\x05" * 32)
    block = h.chain.mine_block()
    assert not block.receipts[0].succeeded


def test_commit_event_carries_tag_not_identity():
    h = AnonymousHarness()
    _, signature = h.commit_as("pseudonym-a", h.identity(0), digest=b"\x01" * 32)
    h.chain.mine_block()
    events = h.chain.events_named("committed")
    payload = events[0].payload
    assert payload["tag"] == signature.tag
    # The ring identity (public key) appears nowhere in the event.
    for public in h.publics:
        assert public.to_bytes() not in events[0].data


def test_ring_verification_charges_gas():
    h = AnonymousHarness()
    h.commit_as("pseudonym-a", h.identity(0), digest=b"\x01" * 32)
    block = h.chain.mine_block()
    breakdown = block.receipts[0].gas_breakdown
    # 4 ecMul per ring member at 6k each: dominates a plain commit.
    assert breakdown["ecmul"] >= 4 * 4 * 6000


def test_anonymous_flow_through_reveal_and_payment():
    """Full anonymous task: commits via ring, reveals via pseudonyms."""
    h = AnonymousHarness()
    from repro.core.hit_contract import CIPHERTEXT_BYTES

    pseudonyms = []
    reveals = []
    for index in range(2):
        answers = [0] * 10
        ciphertexts = h.requester.public_key.encrypt_vector(answers)
        blob = b"".join(c.to_bytes() for c in ciphertexts)
        commitment, key = make_commitment(blob)
        pseudonym, _ = h.commit_as(
            "pseudo-%d" % index, h.identity(index), digest=commitment.digest
        )
        pseudonyms.append(pseudonym)
        reveals.append((pseudonym, blob, key))
    h.chain.mine_block()

    for pseudonym, blob, key in reveals:
        h.chain.send(pseudonym, "anon-hit", "reveal", args=(blob, key),
                     payload=blob + key)
    h.chain.mine_block()

    h.requester.send_golden()
    h.chain.mine_block()
    h.requester.send_finalize()
    h.chain.mine_block()
    for pseudonym in pseudonyms:
        assert h.chain.ledger.balance_of(pseudonym) == 50
