"""The gas schedule: Ethereum Istanbul values and the itemizing meter."""

import pytest

from repro.chain.gas import (
    ECADD,
    ECMUL,
    GasMeter,
    GasPricing,
    PAPER_PRICING,
    SLOAD,
    SSTORE_RESET,
    SSTORE_SET,
    TX_BASE,
    calldata_cost,
    deployment_cost,
    keccak_cost,
    log_cost,
    pairing_cost,
)
from repro.errors import OutOfGas


def test_schedule_constants_are_ethereum_values():
    assert TX_BASE == 21_000
    assert SSTORE_SET == 20_000
    assert SSTORE_RESET == 5_000
    assert SLOAD == 800
    assert ECADD == 150
    assert ECMUL == 6_000


def test_calldata_cost_eip2028():
    assert calldata_cost(b"") == 0
    assert calldata_cost(b"\x00" * 10) == 40
    assert calldata_cost(b"\x01" * 10) == 160
    assert calldata_cost(b"\x00\x01") == 20


def test_keccak_cost_per_word():
    assert keccak_cost(0) == 30
    assert keccak_cost(32) == 36
    assert keccak_cost(33) == 42
    assert keccak_cost(64) == 42


def test_log_cost():
    assert log_cost(0, 0) == 375
    assert log_cost(2, 100) == 375 + 750 + 800


def test_pairing_cost_eip1108():
    assert pairing_cost(2) == 45_000 + 68_000
    assert pairing_cost(4) == 45_000 + 136_000


def test_deployment_cost():
    assert deployment_cost(1000) == 32_000 + 200_000


def test_meter_charges_and_itemizes():
    meter = GasMeter()
    meter.charge_sstore(fresh=True)
    meter.charge_sstore(fresh=False)
    meter.charge_sload(2)
    meter.charge_ecmul(3)
    assert meter.used == 20_000 + 5_000 + 1_600 + 18_000
    assert meter.breakdown["sstore"] == 25_000
    assert meter.breakdown["ecmul"] == 18_000


def test_meter_intrinsic():
    meter = GasMeter()
    meter.charge_intrinsic(b"\x01\x00")
    assert meter.used == TX_BASE + 16 + 4


def test_meter_out_of_gas():
    meter = GasMeter(gas_limit=100)
    with pytest.raises(OutOfGas):
        meter.charge(101, "boom")


def test_meter_rejects_negative():
    meter = GasMeter()
    with pytest.raises(ValueError):
        meter.charge(-5, "bad")


def test_meter_merge():
    a = GasMeter()
    a.charge(100, "x")
    b = GasMeter()
    b.charge(50, "x")
    b.charge(25, "y")
    merged = a.merged_with(b)
    assert merged.used == 175
    assert merged.breakdown == {"x": 150, "y": 25}


def test_pricing_conversion():
    pricing = GasPricing(gwei_per_gas=1.5, usd_per_ether=115.0)
    assert pricing.to_usd(1_000_000) == pytest.approx(0.1725)
    # The paper's Table III totals at these rates.
    assert PAPER_PRICING.to_usd(12_164_000) == pytest.approx(2.098, abs=0.01)
    assert PAPER_PRICING.to_usd(12_877_000) == pytest.approx(2.221, abs=0.01)
