"""The command-line interface: every subcommand runs and reports."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "Demo HIT" in out
    assert "worker-0" in out


def test_imagenet_command(capsys):
    assert main(["imagenet"]) == 0
    out = capsys.readouterr().out
    assert "gold quality" in out
    assert "total gas" in out


def test_fees_command(capsys):
    assert main(["fees"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out
    assert "MTurk" in out
    # A clean run records no dynamic operations — and says so.
    assert "Dynamic operations (GasReport.extras): none" in out


def test_audit_command(capsys):
    assert main(["audit"]) == 0
    out = capsys.readouterr().out
    assert "mass-rejecter" in out
    assert "rejects 100%" in out


def test_incentives_command(capsys):
    assert main(["incentives"]) == 0
    out = capsys.readouterr().out
    assert "copy-paste" in out
    assert "naive transparent chain" in out


def test_serve_command(capsys):
    assert main(["serve", "--tasks", "3", "--stagger", "1"]) == 0
    out = capsys.readouterr().out
    assert "Session engine trace" in out
    assert "all_committed" in out
    assert "finalized" in out
    assert "req-2=done" in out
    assert "settled 3 tasks: 3 workers paid, 3 rejected" in out


def test_serve_command_simultaneous_arrivals(capsys):
    """Stagger 0: the batched five-block schedule, straight from serve."""
    assert main(["serve", "--tasks", "2", "--stagger", "0"]) == 0
    out = capsys.readouterr().out
    assert "chain height: 5 blocks" in out


def test_serve_command_is_seeded_and_reproducible(capsys):
    """Same --seed, same bytes — answer sampling and protocol randomness
    both run off the seed."""
    assert main(["serve", "--tasks", "3", "--seed", "11"]) == 0
    first = capsys.readouterr().out
    assert main(["serve", "--tasks", "3", "--seed", "11"]) == 0
    second = capsys.readouterr().out
    assert first == second
    assert main(["serve", "--tasks", "3", "--seed", "12"]) == 0
    other_seed = capsys.readouterr().out
    assert other_seed != first


def test_serve_command_stragglers_surface_extras(capsys):
    """--stragglers makes a reveal miss its deadline; the burned gas is
    rendered from GasReport.extras instead of vanishing."""
    assert main(["serve", "--tasks", "3", "--stragglers", "1"]) == 0
    out = capsys.readouterr().out
    assert "late-reveal:t0/w0" in out
    assert "Dynamic operations" in out


def test_simulate_command(capsys):
    assert main(["simulate", "--preset", "poisson", "--seed", "3",
                 "--tasks", "6"]) == 0
    out = capsys.readouterr().out
    assert "Scenario 'poisson' (seed 3)" in out
    assert "tasks settled" in out
    assert "commit->finalize latency" in out
    assert "Top earners" in out


def test_simulate_command_json_is_reproducible(capsys):
    argv = ["simulate", "--preset", "burst", "--seed", "5", "--tasks", "6",
            "--json"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    assert capsys.readouterr().out == first
    assert '"tasks_published"' in first


def test_simulate_command_rejects_unknown_preset():
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        main(["simulate", "--preset", "nope"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_simulate_out_writes_the_canonical_report(tmp_path, capsys):
    out_file = str(tmp_path / "report.json")
    assert main(["simulate", "--preset", "poisson", "--seed", "3",
                 "--tasks", "4", "--out", out_file]) == 0
    capsys.readouterr()
    import json

    report = json.loads(open(out_file).read())
    assert report["scenario"] == "poisson"
    assert report["seed"] == 3
    assert report["tasks_published"] == 4
    assert report["total_gas"] > 0


def test_node_init_and_status(tmp_path, capsys):
    state_dir = str(tmp_path / "node")
    assert main(["node", "init", "--state-dir", state_dir,
                 "--fund", "alice=500"]) == 0
    out = capsys.readouterr().out
    assert "initialized node state" in out
    assert "state_root" in out
    assert main(["node", "status", "--state-dir", state_dir]) == 0
    out = capsys.readouterr().out
    assert "height" in out and "state root" in out


def test_node_init_refuses_an_initialized_directory(tmp_path):
    from repro.store import StoreError

    state_dir = str(tmp_path / "node")
    assert main(["node", "init", "--state-dir", state_dir]) == 0
    with pytest.raises(StoreError):
        main(["node", "init", "--state-dir", state_dir])


def test_serve_state_dir_keeps_the_marketplace_alive(tmp_path, capsys):
    """Two serve invocations share one chain: height accumulates and
    the task-name serial never collides."""
    state_dir = str(tmp_path / "node")
    assert main(["serve", "--tasks", "2", "--state-dir", state_dir]) == 0
    first = capsys.readouterr().out
    assert "node state saved" in first
    assert main(["serve", "--tasks", "2", "--seed", "9",
                 "--state-dir", state_dir]) == 0
    second = capsys.readouterr().out
    assert "resumed node at height 7" in second
    assert "settled 2 tasks" in second
    assert main(["node", "status", "--state-dir", state_dir]) == 0
    status = capsys.readouterr().out
    assert "| 14" in status  # both runs' blocks on one chain


def test_simulate_checkpoint_and_node_resume(tmp_path, capsys):
    state_dir = str(tmp_path / "sim")
    assert main(["simulate", "--preset", "poisson", "--seed", "7",
                 "--tasks", "4", "--state-dir", state_dir,
                 "--checkpoint-every", "5", "--json"]) == 0
    first = capsys.readouterr().out
    assert "node state saved" in first
    assert main(["node", "resume", "--state-dir", state_dir,
                 "--json"]) == 0
    resumed = capsys.readouterr().out
    assert "Resumed scenario 'poisson' (seed 7)" in resumed
    # The resumed-from-checkpoint report matches the original run's.
    def json_block(text):
        return text[text.index("{") : text.rindex("}") + 1]

    assert json_block(resumed) == json_block(first)


def test_simulate_checkpoint_every_requires_state_dir(capsys):
    assert main(["simulate", "--preset", "poisson", "--tasks", "2",
                 "--checkpoint-every", "4"]) == 2
    assert "--state-dir" in capsys.readouterr().err


def test_simulate_refuses_an_existing_state_dir(tmp_path, capsys):
    state_dir = str(tmp_path / "node")
    assert main(["node", "init", "--state-dir", state_dir]) == 0
    capsys.readouterr()
    assert main(["simulate", "--preset", "poisson", "--tasks", "2",
                 "--state-dir", state_dir]) == 2
    assert "already holds node state" in capsys.readouterr().err
