"""The multi-task throughput subsystem: deploy_many, evaluate_batch,
run_hits_batch.

Complements tests/contracts/ (which freezes shapes) by exercising the
batched paths' *semantics*: Fig. 4 verdicts must be preserved per
worker, block counts must collapse from per-task to per-phase, and the
batched gas charge must undercut the sequential one.
"""

from __future__ import annotations

import pytest

from repro.chain.chain import Chain
from repro.core.hit_contract import HITContract
from repro.core.protocol import run_hit
from repro.crypto.poqoea import QualityProof
from repro.dragoon import Dragoon
from repro.errors import ChainError
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


# ---------------------------------------------------------------------------
# Chain.deploy_many
# ---------------------------------------------------------------------------


def test_deploy_many_seals_one_block():
    chain = Chain()
    deployer = chain.register_account("req", 1000)
    task = small_task()
    from repro.core.requester import RequesterClient
    from repro.storage.swarm import SwarmStore

    swarm = SwarmStore()
    deployments = []
    for index in range(3):
        client = RequesterClient("req-%d" % index, task, chain, swarm)
        contract, args, payload = client.prepare_publish("hit:%d" % index)
        deployments.append((contract, client.address, args, payload))
    height_before = chain.height
    receipts = chain.deploy_many(deployments)
    assert chain.height == height_before + 1
    assert all(receipt.succeeded for receipt in receipts)
    assert len(chain.blocks[-1].transactions) == 3
    for index in range(3):
        assert isinstance(chain.contract("hit:%d" % index), HITContract)


def test_deploy_many_rejects_duplicate_names():
    chain = Chain()
    deployer = chain.register_account("req", 1000)
    task = small_task()
    from repro.core.requester import RequesterClient
    from repro.storage.swarm import SwarmStore

    client = RequesterClient("req", task, chain, SwarmStore())
    contract_a, args, payload = client.prepare_publish("hit:same")
    contract_b, _, _ = client.prepare_publish("hit:same")
    with pytest.raises(ChainError):
        chain.deploy_many(
            [
                (contract_a, client.address, args, payload),
                (contract_b, client.address, args, payload),
            ]
        )


def test_deploy_many_failed_deployment_gets_receipt_not_exception():
    """An unfunded requester's deployment reverts; others still land."""
    chain = Chain()
    task = small_task(budget=100)
    from repro.core.requester import RequesterClient
    from repro.storage.swarm import SwarmStore

    swarm = SwarmStore()
    rich = RequesterClient("rich", task, chain, swarm)
    poor = RequesterClient("poor", task, chain, swarm, balance=1)
    deployments = []
    for name, client in (("hit:rich", rich), ("hit:poor", poor)):
        contract, args, payload = client.prepare_publish(name)
        deployments.append((contract, client.address, args, payload))
    receipts = chain.deploy_many(deployments)
    assert receipts[0].succeeded
    assert not receipts[1].succeeded
    assert "budget" in receipts[1].revert_reason
    with pytest.raises(ChainError):
        chain.contract("hit:poor")


# ---------------------------------------------------------------------------
# Dragoon.run_hits_batch
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def batch_of_three():
    dragoon = Dragoon()
    specs = [
        ("req-%d" % index, small_task(), [GOOD, BAD]) for index in range(3)
    ]
    outcomes = dragoon.run_hits_batch(specs)
    return dragoon, outcomes


def test_batch_advances_five_blocks_total(batch_of_three):
    dragoon, outcomes = batch_of_three
    # publish + commits + reveals + evaluations + finalizations.
    assert dragoon.chain.height == 5
    assert len(outcomes) == 3


def test_batch_preserves_fig4_verdicts(batch_of_three):
    _, outcomes = batch_of_three
    for outcome in outcomes:
        good, bad = outcome.workers
        assert outcome.payment_of(good) == 50
        assert outcome.payment_of(bad) == 0
        assert outcome.contract.verdict_of(good.address) == "paid-default"
        assert outcome.contract.verdict_of(bad.address) == "rejected-quality"


def test_batch_matches_sequential_payments(batch_of_three):
    _, outcomes = batch_of_three
    sequential = run_hit(small_task(), [GOOD, BAD])
    sequential_payments = sorted(sequential.payments().values())
    for outcome in outcomes:
        assert sorted(outcome.payments().values()) == sequential_payments


def test_batch_rejection_gas_undercuts_sequential(batch_of_three):
    """The RLC check saves ecMul/ecAdd gas per proof."""
    _, outcomes = batch_of_three
    sequential = run_hit(small_task(), [GOOD, BAD])
    sequential_gas = next(iter(sequential.gas.rejections.values()))
    batched_gas = next(iter(outcomes[0].gas.rejections.values()))
    assert 0 < batched_gas < sequential_gas


def test_batch_requesters_keep_long_lived_keys():
    dragoon = Dragoon()
    dragoon.fund("alice", 200)  # enough budget for both tasks up front
    first = dragoon.run_hits_batch([("alice", small_task(), [GOOD, GOOD])])
    key_bytes = dragoon.requester_public_key_bytes("alice")
    second = dragoon.run_hits_batch([("alice", small_task(), [GOOD, GOOD])])
    assert first[0].requester.public_key.to_bytes() == key_bytes
    assert second[0].requester.public_key.to_bytes() == key_bytes


def test_batched_evaluate_handles_outrange_workers():
    """An out-of-range answer still gets its individual outrange dispute."""
    dragoon = Dragoon()
    outrange_answers = [0] * 9 + [7]  # 7 outside the (0, 1) range
    (outcome,) = dragoon.run_hits_batch(
        [("req", small_task(), [GOOD, outrange_answers])]
    )
    good, bad = outcome.workers
    assert outcome.payment_of(good) == 50
    assert outcome.payment_of(bad) == 0
    assert outcome.contract.verdict_of(bad.address) == "rejected-outrange"


# ---------------------------------------------------------------------------
# HITContract.evaluate_batch edge semantics
# ---------------------------------------------------------------------------


def _run_batched(task, answers, mutate_batch):
    """Drive one task to the evaluate phase, mutate the batch args, mine."""
    dragoon = Dragoon()
    handle = dragoon.publish_task("req", task)
    for index, answer_vector in enumerate(answers):
        dragoon.submit_answers(handle, "w%d" % index, answer_vector)
    dragoon.chain.mine_block()
    for worker in handle.workers:
        worker.send_reveal()
    dragoon.chain.mine_block()

    handle.requester.evaluate_all_batched()
    # Rewrite the pending evaluate_batch transaction through the hook.
    pending = dragoon.chain.mempool.pending
    batch_txs = [t for t in pending if t.method == "evaluate_batch"]
    assert len(batch_txs) == 1
    mutate_batch(batch_txs[0])
    dragoon.chain.mine_block()
    dragoon.chain.send(
        handle.requester.address, handle.contract_name, "finalize"
    )
    dragoon.chain.mine_block()
    return dragoon, handle


def test_evaluate_batch_bogus_proof_pays_the_worker():
    """Fig. 4: a rejection whose proof fails pays the accused worker."""

    def corrupt(transaction):
        (rejections,) = transaction.args
        worker, quality, proof, chunks = rejections[0]
        assert isinstance(proof, QualityProof)
        entry = proof.entries[0]
        from repro.crypto.curve import G1Point
        from repro.crypto.vpke import DecryptionProof

        bad = type(entry)(
            entry.index,
            entry.answer,
            DecryptionProof(
                entry.proof.commitment_a + G1Point.generator(),
                entry.proof.commitment_b,
                entry.proof.response,
            ),
        )
        rejections[0] = (worker, quality, type(proof)((bad,) + proof.entries[1:]), chunks)

    dragoon, handle = _run_batched(small_task(), [GOOD, BAD], corrupt)
    bad_worker = handle.workers[1]
    contract = dragoon.chain.contract(handle.contract_name)
    assert contract.verdict_of(bad_worker.address) == "paid-evaluate"
    assert dragoon.chain.ledger.balance_of(bad_worker.address) == 50


def test_evaluate_batch_duplicate_worker_reverts():
    def duplicate(transaction):
        (rejections,) = transaction.args
        rejections.append(rejections[0])

    dragoon, handle = _run_batched(small_task(), [GOOD, BAD], duplicate)
    receipts = [
        receipt
        for block in dragoon.chain.blocks
        for receipt in block.receipts
        if receipt.transaction.method == "evaluate_batch"
    ]
    assert len(receipts) == 1
    assert not receipts[0].succeeded
    assert "twice" in receipts[0].revert_reason
    # The revert leaves the worker un-adjudicated, so finalize pays them.
    bad_worker = handle.workers[1]
    contract = dragoon.chain.contract(handle.contract_name)
    assert contract.verdict_of(bad_worker.address) == "paid-default"


def test_evaluate_batch_empty_batch_is_a_noop():
    """All workers above threshold: no evaluate_batch tx is sent at all."""
    dragoon = Dragoon()
    (outcome,) = dragoon.run_hits_batch([("req", small_task(), [GOOD, GOOD])])
    methods = [
        receipt.transaction.method
        for block in dragoon.chain.blocks
        for receipt in block.receipts
    ]
    assert "evaluate_batch" not in methods
    assert all(payment == 50 for payment in outcome.payments().values())
