"""The SNARK cost model: calibration and extrapolation sanity."""

import pytest

from repro.baseline.costmodel import (
    SnarkCostModel,
    measure_local_model,
    paper_calibrated_model,
)


def test_paper_calibrated_model_recovers_paper_numbers():
    model = paper_calibrated_model()
    vpke = model.estimate_vpke()
    assert vpke.seconds == pytest.approx(37.0, rel=0.01)
    assert vpke.peak_gib == pytest.approx(3.9, rel=0.01)


def test_paper_model_poqoea_near_paper():
    """The PoQoEA estimate should land near the paper's 112 s / 10.3 GB."""
    model = paper_calibrated_model()
    poqoea = model.estimate_poqoea()
    assert 90 < poqoea.seconds < 135
    assert 9 < poqoea.peak_gib < 14


def test_estimates_scale_linearly():
    model = SnarkCostModel(seconds_per_constraint=1e-5,
                           bytes_per_constraint=100.0)
    small = model.estimate("s", 1000)
    large = model.estimate("l", 2000)
    assert large.seconds == pytest.approx(2 * small.seconds)
    assert large.peak_bytes == pytest.approx(2 * small.peak_bytes)


def test_fixed_costs_added():
    model = SnarkCostModel(
        seconds_per_constraint=0.0,
        bytes_per_constraint=0.0,
        fixed_seconds=1.5,
        fixed_bytes=10.0,
    )
    estimate = model.estimate("s", 10)
    assert estimate.seconds == 1.5
    assert estimate.peak_bytes == 10.0


@pytest.mark.slow
def test_measured_model_is_positive_and_predictive():
    model, samples = measure_local_model(sizes=(8, 16, 32))
    assert len(samples) == 3
    assert model.seconds_per_constraint > 0
    # Extrapolation to the full statement must be enormous compared to
    # the concrete construction (that is the paper's point).
    vpke = model.estimate_vpke()
    assert vpke.seconds > 60  # pure-Python per-constraint cost is high
