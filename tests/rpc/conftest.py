"""Fixtures for the RPC boundary suite.

``rpc_setup`` is parametrized over every front-end, so each test that
uses it runs against the in-memory loopback (full wire encoding, no
socket), a real localhost HTTP socket on the threaded server, and the
same socket protocol on the asyncio server — the CI ``rpc`` and
``rpc-async`` lanes rely on this to exercise all three paths without
separate harnesses.
"""

from __future__ import annotations

import pytest

from repro.chain.transactions import scoped_tx_nonces
from repro.crypto.rng import deterministic_entropy
from repro.rpc import (
    AsyncRpcServer,
    HitSpec,
    HttpTransport,
    LoopbackTransport,
    RpcChain,
    RpcHttpServer,
    RpcNode,
    RpcRequesterClient,
    RpcSwarm,
    RpcWorkerClient,
    run_hits,
)
from tests.helpers import small_task


@pytest.fixture(params=["loopback", "http", "async"])
def rpc_setup(request):
    """A fresh node plus a transport to it: ``(node, transport)``."""
    node = RpcNode()
    if request.param == "loopback":
        yield node, LoopbackTransport(node)
    elif request.param == "http":
        with RpcHttpServer(node) as server:
            transport = HttpTransport(server.url)
            yield node, transport
            transport.close()
    else:
        with AsyncRpcServer(node) as server:
            transport = HttpTransport(server.url)
            yield node, transport
            transport.close()


@pytest.fixture
def loopback_node():
    """A fresh node behind loopback only (fuzz and paging tests)."""
    node = RpcNode()
    return node, LoopbackTransport(node)


@pytest.fixture
def async_server():
    """A fresh node served by the asyncio front-end: ``(node, server)``."""
    node = RpcNode()
    with AsyncRpcServer(node) as server:
        yield node, server


def rpc_client_factories(transport):
    """The ``run_hits`` factories for the RPC front-end."""
    return (
        lambda label, task: RpcRequesterClient(label, task, transport),
        lambda label, answers: RpcWorkerClient(
            label, transport, answers=answers
        ),
    )


def run_one_hit(transport, seed: int = 7, label: str = "alice"):
    """One seeded two-worker HIT through RPC clients; returns outcomes."""
    requester_factory, worker_factory = rpc_client_factories(transport)
    specs = [HitSpec(0, label, small_task(), [[0] * 10, [1] * 10])]
    with scoped_tx_nonces(), deterministic_entropy(seed):
        return run_hits(
            RpcChain(transport),
            RpcSwarm(transport),
            specs,
            requester_factory,
            worker_factory,
        )
