"""The asyncio front-end: equivalence, auth, push, and churn.

Three contracts pinned here, on top of the whole ``rpc_setup``-based
suite already running against :class:`AsyncRpcServer`:

* **equivalence** — the same seeded scenario through the threaded and
  asyncio front-ends produces byte-identical receipts and the same
  ``state_root`` (the front-end is a transport, not a semantics layer);
* **auth** — admin and submission methods refuse without a token and
  work with one, identically over both front-ends, and a refusal never
  moves ``state_root``;
* **push** — a ``chain_subscribe`` stream delivers every event exactly
  once, in order, because the server pushed it (zero ``chain_events``
  polls anywhere), survives concurrent subscribers, and ends loudly
  when the cursor is compacted away.  Mid-stream disconnects and
  connection churn must never wedge the server.
"""

from __future__ import annotations

import asyncio
import socket
import time

import pytest

from repro.errors import RpcError
from repro.store import codec
from repro.rpc import (
    AsyncHttpTransport,
    AsyncRpcServer,
    AsyncRpcSession,
    AsyncSubscription,
    HttpTransport,
    PushSubscription,
    RpcAuth,
    RpcChain,
    RpcHttpServer,
    RpcNode,
    RpcSession,
)
from tests.rpc.conftest import run_one_hit
from tests.rpc.test_rpc_contract import canonical_receipts, gas_as_data


# ---------------------------------------------------------------------------
# Equivalence: threaded vs asyncio front-end, byte for byte
# ---------------------------------------------------------------------------


def run_scenario_over(server_cls, seed: int = 23):
    """One seeded HIT over a live server; everything RPC-read up front."""
    node = RpcNode()
    with server_cls(node) as server:
        transport = HttpTransport(server.url)
        outcomes = run_one_hit(transport, seed=seed)
        summary = {
            "receipts": [canonical_receipts(o) for o in outcomes],
            "gas": [gas_as_data(o.gas) for o in outcomes],
            "payments": [o.payments() for o in outcomes],
            "verdicts": [o.verdicts() for o in outcomes],
            "state_root": RpcChain(transport).state_root(),
        }
        transport.close()
    assert all(summary["receipts"]), "scenario produced no receipts"
    return summary


def test_threaded_and_async_front_ends_are_byte_identical():
    threaded = run_scenario_over(RpcHttpServer)
    asynced = run_scenario_over(AsyncRpcServer)
    assert threaded == asynced


# ---------------------------------------------------------------------------
# Auth: token-gated admin and submission methods
# ---------------------------------------------------------------------------


@pytest.fixture(params=["threaded", "async"])
def authed_server(request):
    node = RpcNode(
        auth=RpcAuth(admin_tokens=("root-token",), submit_tokens=("sub-token",))
    )
    cls = RpcHttpServer if request.param == "threaded" else AsyncRpcServer
    with cls(node) as server:
        transport = HttpTransport(server.url)
        yield node, transport
        transport.close()


def test_auth_refuses_untokened_writes_and_root_stays_put(authed_server):
    node, transport = authed_server
    open_session = RpcSession(transport)
    root_before = codec.state_root(node.chain)
    for method, params in [
        ("chain_mine", {}),
        ("tx_register", {"label": "eve", "balance": 5}),
        ("node_prune", {"through": 0}),
    ]:
        with pytest.raises(RpcError) as err:
            open_session.call(method, **params)
        assert err.value.code == -32002
    # Wrong tier: a submit token cannot reach admin methods.
    submit_session = RpcSession(transport, auth="sub-token")
    with pytest.raises(RpcError) as err:
        submit_session.call("chain_mine")
    assert err.value.code == -32002
    assert codec.state_root(node.chain) == root_before


def test_auth_admits_each_tier_to_its_methods(authed_server):
    node, transport = authed_server
    # Reads stay open — no token needed.
    assert RpcSession(transport).call("chain_head")["height"] == 0
    # A submit token covers submissions; the admin token covers both.
    submit_chain = RpcChain(transport, auth="sub-token")
    submit_chain.register_account("alice", balance=100)
    admin_chain = RpcChain(transport, auth="root-token")
    admin_chain.register_account("bob", balance=100)
    admin_chain.mine_block()
    assert node.chain.height == 1


def test_batch_members_are_auth_checked_individually(authed_server):
    node, transport = authed_server
    session = RpcSession(transport)  # no token
    outcomes = session.call_batch(
        [("chain_head", {}), ("chain_mine", {}), ("chain_state_root", {})]
    )
    assert outcomes[0]["height"] == 0
    assert isinstance(outcomes[1], RpcError) and outcomes[1].code == -32002
    assert "state_root" in outcomes[2]
    assert node.chain.height == 0


# ---------------------------------------------------------------------------
# Push subscriptions
# ---------------------------------------------------------------------------


def drain_stream(subscription, node, timeout: float = 5.0):
    """Read pushed frames until the cursor reaches the node's head."""
    records = []
    while subscription.cursor < node.event_head(from_start=False):
        records.extend(subscription.next_records(timeout=timeout))
    return records


def test_push_stream_delivers_every_event_exactly_once(async_server):
    node, server = async_server
    subscription = PushSubscription(server.url, from_start=True)
    transport = HttpTransport(server.url)
    run_one_hit(transport)
    pushed = drain_stream(subscription, node)
    subscription.close()
    # Ground truth straight off the node's event log.
    expected = list(range(len(node.chain.event_log)))
    assert [record.sequence for record in pushed] == expected
    assert len(pushed) >= 8
    transport.close()


def test_push_stream_is_pushed_not_polled(async_server):
    """The subscriber issues zero requests after subscribing."""
    node, server = async_server
    subscription = PushSubscription(server.url, from_start=True)
    transport = HttpTransport(server.url)
    run_one_hit(transport)
    served_after_scenario = node.requests_served
    pushed = drain_stream(subscription, node)
    assert pushed
    # Draining the stream costs the node no further requests: frames
    # were pushed by the server, not pulled by the client.
    assert node.requests_served == served_after_scenario
    subscription.close()
    transport.close()


def test_concurrent_subscribers_all_see_the_same_stream(async_server):
    node, server = async_server
    subscriptions = [
        PushSubscription(server.url, from_start=True) for _ in range(8)
    ]
    transport = HttpTransport(server.url)
    run_one_hit(transport)
    streams = [
        [record.sequence for record in drain_stream(sub, node)]
        for sub in subscriptions
    ]
    for subscription in subscriptions:
        subscription.close()
    expected = list(range(len(node.chain.event_log)))
    assert all(stream == expected for stream in streams)
    transport.close()


def test_pruned_cursor_ends_the_stream_loudly(async_server):
    node, server = async_server
    transport = HttpTransport(server.url)
    run_one_hit(transport)
    session = RpcSession(transport)
    head = session.call("chain_head")["events"]
    session.call("node_prune", through=head)
    # Subscribe from the compacted-away origin: the server must answer
    # with an error frame, not silently skip to the prune base.
    subscription = PushSubscription(server.url, cursor=0)
    with pytest.raises(Exception) as err:
        subscription.next_records(timeout=5)
    assert "compacted away" in str(err.value)
    subscription.close()
    transport.close()


def test_mid_stream_disconnect_unsubscribes(async_server):
    node, server = async_server
    transport = HttpTransport(server.url)
    subscription = PushSubscription(server.url, from_start=True)
    deadline = 50
    while len(server._subscribers) < 1 and deadline:
        deadline -= 1
        time.sleep(0.05)
    assert len(server._subscribers) == 1
    subscription.close()  # rude exit: no unsubscribe message exists
    run_one_hit(transport)  # writes keep flowing; server must not wedge
    deadline = 100
    while server._subscribers and deadline:
        deadline -= 1
        time.sleep(0.05)
    assert not server._subscribers
    assert RpcSession(transport).call("chain_head")["height"] >= 1
    transport.close()


# ---------------------------------------------------------------------------
# The async client classes
# ---------------------------------------------------------------------------


def test_async_transport_and_batch_session(async_server):
    node, server = async_server

    async def scenario():
        transport = AsyncHttpTransport(server.url)
        session = AsyncRpcSession(transport)
        head = await session.call("chain_head")
        outcomes = await session.call_batch(
            [("chain_head", {}), ("nonsense", {}), ("chain_state_root", {})]
        )
        await transport.close()
        return head, outcomes

    head, outcomes = asyncio.run(scenario())
    assert head["height"] == 0
    assert outcomes[0]["height"] == 0
    assert isinstance(outcomes[1], RpcError) and outcomes[1].code == -32601
    assert "state_root" in outcomes[2]


def test_async_subscription_consumes_pushes(async_server):
    node, server = async_server
    transport = HttpTransport(server.url)

    async def consume():
        subscription = await AsyncSubscription.open(server.url, from_start=True)
        records = []
        while subscription.cursor < node.event_head(from_start=False):
            records.extend(
                await asyncio.wait_for(subscription.next_records(), timeout=5)
            )
        await subscription.close()
        return records

    run_one_hit(transport)
    records = asyncio.run(consume())
    assert [record.sequence for record in records] == list(
        range(len(node.chain.event_log))
    )
    transport.close()


# ---------------------------------------------------------------------------
# Churn: rude clients must never wedge the server
# ---------------------------------------------------------------------------


def test_connection_churn_under_load(async_server):
    node, server = async_server
    for round_number in range(20):
        sock = socket.create_connection((server.host, server.port), timeout=5)
        if round_number % 3 == 0:
            sock.close()  # connect-and-vanish
        elif round_number % 3 == 1:
            sock.sendall(b"POST /rpc HTTP/1.1\r\nContent-Length: 50\r\n\r\n")
            sock.close()  # die mid-body
        else:
            sock.sendall(b"gibberish\r\n\r\n")
            sock.close()  # not even HTTP
    # The server still answers cleanly after all of that.
    transport = HttpTransport(server.url)
    root_before = codec.state_root(node.chain)
    assert RpcSession(transport).call("chain_head")["height"] == 0
    assert codec.state_root(node.chain) == root_before
    transport.close()


def test_oversized_request_is_refused_from_the_header(async_server):
    node, server = async_server
    sock = socket.create_connection((server.host, server.port), timeout=5)
    sock.sendall(
        b"POST /rpc HTTP/1.1\r\nContent-Length: %d\r\n\r\n"
        % (node.max_request_bytes + 1)
    )
    response = sock.recv(65536).decode("latin-1", "replace")
    sock.close()
    assert " 413 " in response.splitlines()[0]
    assert "-32001" in response
