"""The malformed-request fuzz harness: rejection never corrupts state.

The server's safety contract is stronger than "returns an error": a
rejected request must leave the node's canonical state *byte-identical*
— ``state_root`` unchanged — because a deployed node faces the open
internet, not well-behaved clients.  Every case here (unparseable JSON,
broken envelopes, unknown methods, hypothesis-generated wrong param
types and shapes, oversized bodies, replayed nonces, raw socket
garbage) asserts both halves: an error comes back, and the state root
does not move.

Wrong-typed params must also never surface as ``INTERNAL_ERROR``: the
param validators are the contract, an unhandled ``TypeError`` inside a
handler would mean a validation hole.
"""

from __future__ import annotations

import json
import socket

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chain.transactions import scoped_tx_nonces
from repro.crypto.rng import deterministic_entropy
from repro.errors import ChainError, InvalidTransaction
from repro.rpc import (
    HttpTransport,
    LoopbackTransport,
    RpcChain,
    RpcHttpServer,
    RpcNode,
    wire,
)
from repro.store import codec
from tests.rpc.conftest import run_one_hit

# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def seeded_node(max_request_bytes: int = 64 * 1024):
    """A node with real state to corrupt: one settled HIT on the chain."""
    node = RpcNode(max_request_bytes=max_request_bytes)
    transport = LoopbackTransport(node)
    run_one_hit(transport, seed=5)
    return node, transport


def response_for(node: RpcNode, raw: bytes) -> dict:
    before = codec.state_root(node.chain)
    response = json.loads(node.handle(raw).decode("utf-8"))
    if "error" in response:
        assert codec.state_root(node.chain) == before, (
            "rejected request moved the state root: %r" % (raw[:200],)
        )
    return response


def call_raw(node: RpcNode, method, params=None, **envelope_overrides) -> dict:
    envelope = {"jsonrpc": "2.0", "id": 1, "method": method}
    if params is not None:
        envelope["params"] = params
    envelope.update(envelope_overrides)
    return response_for(node, json.dumps(envelope).encode("utf-8"))


# ---------------------------------------------------------------------------
# Envelope-level garbage
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "raw",
    [
        b"",
        b"{",
        b"not json at all",
        b"\xff\xfe\x00garbage",
        b'{"jsonrpc": "2.0", "method": ',
        b"[1, 2, 3",
    ],
)
def test_unparseable_bytes_are_parse_errors(raw):
    node, _ = seeded_node()
    response = response_for(node, raw)
    assert response["error"]["code"] == wire.PARSE_ERROR


@pytest.mark.parametrize(
    "envelope",
    [
        [],  # an empty batch is an error per JSON-RPC 2.0
        42,
        "chain_head",
        None,
        {},  # no jsonrpc, no method
        {"id": 1, "method": "chain_head"},  # missing jsonrpc
        {"jsonrpc": "1.0", "id": 1, "method": "chain_head"},
        {"jsonrpc": "2.0", "id": 1},  # missing method
        {"jsonrpc": "2.0", "id": 1, "method": 5},
        {"jsonrpc": "2.0", "id": 1, "method": "chain_head", "params": [1]},
        {"jsonrpc": "2.0", "id": 1, "method": "chain_head", "params": "x"},
        {"jsonrpc": "2.0", "id": 1, "method": "chain_head", "auth": 5},
    ],
)
def test_broken_envelopes_are_invalid_requests(envelope):
    node, _ = seeded_node()
    response = response_for(node, json.dumps(envelope).encode("utf-8"))
    assert response["error"]["code"] == wire.INVALID_REQUEST


# ---------------------------------------------------------------------------
# Batch envelopes
# ---------------------------------------------------------------------------


def test_batch_maps_requests_to_responses_in_order():
    node, _ = seeded_node()
    batch = [
        {"jsonrpc": "2.0", "id": 1, "method": "chain_head"},
        {"jsonrpc": "2.0", "id": 2, "method": "no_such_method"},
        {"jsonrpc": "2.0", "id": 3, "method": "chain_gas"},
        "not an object",
    ]
    before = codec.state_root(node.chain)
    responses = json.loads(
        node.handle(json.dumps(batch).encode("utf-8")).decode("utf-8")
    )
    assert isinstance(responses, list) and len(responses) == 4
    assert responses[0]["id"] == 1 and "result" in responses[0]
    assert responses[1]["error"]["code"] == wire.METHOD_NOT_FOUND
    assert responses[2]["id"] == 3 and "result" in responses[2]
    assert responses[3]["error"]["code"] == wire.INVALID_REQUEST
    assert codec.state_root(node.chain) == before


def test_batch_members_count_individually():
    node, _ = seeded_node()
    served, rejected = node.requests_served, node.requests_rejected
    batch = [
        {"jsonrpc": "2.0", "id": 1, "method": "chain_head"},
        {"jsonrpc": "2.0", "id": 2, "method": "nope"},
    ]
    node.handle(json.dumps(batch).encode("utf-8"))
    assert node.requests_served == served + 1
    assert node.requests_rejected == rejected + 1


def test_oversized_batch_is_one_invalid_request():
    from repro.rpc.server import MAX_BATCH_REQUESTS

    node, _ = seeded_node()
    batch = [
        {"jsonrpc": "2.0", "id": i, "method": "chain_head"}
        for i in range(MAX_BATCH_REQUESTS + 1)
    ]
    response = response_for(node, json.dumps(batch).encode("utf-8"))
    assert response["error"]["code"] == wire.INVALID_REQUEST
    assert "cap" in response["error"]["message"]


def test_batch_write_then_read_sees_the_write():
    from repro.ledger.accounts import Address

    node, _ = seeded_node()
    batch = [
        {"jsonrpc": "2.0", "id": 1, "method": "tx_register",
         "params": {"label": "batcher", "balance": 7}},
        {"jsonrpc": "2.0", "id": 2, "method": "chain_balance",
         "params": {"address": wire.pack(Address.from_label("batcher"))}},
    ]
    responses = json.loads(
        node.handle(json.dumps(batch).encode("utf-8")).decode("utf-8")
    )
    assert responses[0]["result"]
    assert responses[1]["result"]["balance"] == 7


# One settled node shared by the hypothesis-driven cases: building a HIT
# per example would dominate the run, and rejected requests prove they
# read nothing by leaving the root untouched.
@pytest.fixture(scope="module")
def fuzz_node():
    with scoped_tx_nonces(), deterministic_entropy(99):
        node, _ = seeded_node()
    return node


@given(name=st.text(min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_unknown_methods_are_refused(fuzz_node, name):
    if name in fuzz_node._methods:
        return
    response = call_raw(fuzz_node, name)
    assert response["error"]["code"] == wire.METHOD_NOT_FOUND


# ---------------------------------------------------------------------------
# Wrong param types and shapes
# ---------------------------------------------------------------------------

_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=6,
)

_param_names = st.sampled_from(
    [
        "label", "balance", "sender", "contract", "method", "args",
        "payload", "value", "nonce", "cursor", "limit", "names", "topic",
        "number", "address", "name", "data", "digest", "through",
        "deployments", "type", "deployer",
    ]
)

_mutating_methods = frozenset(
    ["chain_mine", "node_checkpoint", "node_prune", "tx_register",
     "tx_send", "tx_deploy", "tx_deploy_many", "swarm_put"]
)


@given(
    method=st.sampled_from(
        ["chain_head", "chain_block", "chain_events", "chain_gas",
         "chain_balance", "chain_payments", "chain_contract",
         "chain_state_root", "tx_register", "tx_send", "tx_deploy",
         "tx_deploy_many", "node_status", "node_prune", "swarm_put",
         "swarm_get", "rpc_version"]
    ),
    params=st.dictionaries(_param_names, _json_values, max_size=4),
)
@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fuzzed_params_never_corrupt_state(fuzz_node, method, params):
    node = fuzz_node
    before = codec.state_root(node.chain)
    response = call_raw(node, method, params)
    if "error" in response:
        assert response["error"]["code"] != wire.INTERNAL_ERROR, (
            "validation hole: %s(%r) -> %s" % (method, params, response)
        )
        assert codec.state_root(node.chain) == before
    else:
        # The request was well-formed after all; only state-touching
        # methods may move the root (e.g. tx_register with a str label).
        if method not in _mutating_methods:
            assert codec.state_root(node.chain) == before


@pytest.mark.parametrize(
    "method,params",
    [
        ("chain_block", {"number": True}),
        ("chain_block", {"number": "0"}),
        ("chain_block", {}),
        ("chain_events", {"cursor": -1}),
        ("chain_events", {"limit": 0}),
        ("chain_events", {"limit": 10**6}),
        ("chain_events", {"names": ["ok", 5]}),
        ("chain_events", {"contract": "zz"}),  # not hex
        ("chain_events", {"topic": "0xzz"}),
        ("chain_balance", {"address": "abcd"}),  # hex, not canonical
        ("chain_balance", {"address": wire.pack(5)}),  # wrong decoded type
        ("chain_balance", {}),
        ("tx_register", {"label": 5}),
        ("tx_register", {"label": "x", "balance": -1}),
        ("tx_send", {"sender": wire.pack(b"ab"), "contract": "c",
                     "method": "m"}),
        ("tx_send", {"sender": wire.pack((1, 2)), "contract": "c",
                     "method": "m"}),
        ("tx_deploy", {"type": "HITContract", "name": "n",
                       "deployer": wire.pack(None)}),
        ("tx_deploy_many", {"deployments": []}),
        ("tx_deploy_many", {"deployments": ["x"]}),
        ("swarm_put", {"data": "xyz"}),
        ("swarm_get", {}),
    ],
)
def test_wrong_shapes_are_invalid_params(fuzz_node, method, params):
    response = call_raw(fuzz_node, method, params)
    assert response["error"]["code"] == wire.INVALID_PARAMS


def test_args_must_decode_to_a_tuple(fuzz_node):
    node = fuzz_node
    sender = wire.pack(node.chain.registry.grant("alice"))
    response = call_raw(
        node, "tx_send",
        {"sender": sender, "contract": "hit:alice", "method": "commit",
         "args": wire.pack([1, 2, 3])},
    )
    assert response["error"]["code"] == wire.INVALID_PARAMS


# ---------------------------------------------------------------------------
# Application-level rejections
# ---------------------------------------------------------------------------


def test_unknown_contract_and_unregistered_sender_are_chain_errors(fuzz_node):
    node = fuzz_node
    registered = wire.pack(node.chain.registry.grant("alice"))
    response = call_raw(
        node, "tx_send",
        {"sender": registered, "contract": "no-such-contract",
         "method": "commit"},
    )
    assert response["error"]["code"] == -32022  # chain family
    from repro.ledger.accounts import Address

    unknown = wire.pack(Address.from_label("never-registered"))
    response = call_raw(
        node, "tx_send",
        {"sender": unknown, "contract": "hit:alice", "method": "commit"},
    )
    assert response["error"]["data"]["kind"] == "InvalidTransaction"


def test_replayed_nonce_is_rejected_and_state_preserved():
    node, transport = seeded_node()
    chain = RpcChain(transport)
    sender = chain.register_account("replayer", 10)
    next_nonce = chain.rpc.call("node_status")["next_nonce"]
    params = {
        "sender": wire.pack(sender),
        "contract": "hit:alice",
        "method": "commit",
        "args": wire.pack((b"\x00" * 32,)),
        "payload": (b"\x00" * 32).hex(),
        "nonce": next_nonce,
    }
    accepted = call_raw(node, "tx_send", params)
    assert accepted["result"]["nonce"] == next_nonce
    # The byte-identical request again: its nonce is now consumed.
    replay = call_raw(node, "tx_send", params)
    assert replay["error"]["data"]["kind"] == "InvalidTransaction"
    assert "nonce" in replay["error"]["message"]
    # And a far-future nonce is a gap, not a grant.
    params["nonce"] = next_nonce + 1000
    gap = call_raw(node, "tx_send", params)
    assert gap["error"]["data"]["kind"] == "InvalidTransaction"


def test_duplicate_contract_name_is_rejected_without_sealing():
    node, transport = seeded_node()
    chain = RpcChain(transport)
    deployer = chain.register_account("dup", 100)
    height = node.chain.height
    response = call_raw(
        node, "tx_deploy",
        {"type": "HITContract", "name": "hit:alice",
         "deployer": wire.pack(deployer)},
    )
    assert response["error"]["code"] == -32022
    assert node.chain.height == height  # no block sealed


def test_error_taxonomy_reconstructs_client_side():
    _, transport = seeded_node()
    chain = RpcChain(transport)
    with pytest.raises(ChainError):
        chain.rpc.call("chain_block", number=10**6)
    with pytest.raises(InvalidTransaction):
        chain.rpc.call(
            "tx_send",
            sender=wire.pack(chain.register_account("x", 0)),
            contract="hit:alice",
            method="_private",
        )


# ---------------------------------------------------------------------------
# Oversized requests
# ---------------------------------------------------------------------------


def test_oversized_request_is_rejected_before_execution():
    node = RpcNode(max_request_bytes=4096)
    RpcChain(LoopbackTransport(node)).register_account("alice", 5)
    big = json.dumps(
        {"jsonrpc": "2.0", "id": 1, "method": "swarm_put",
         "params": {"data": "00" * 8192}}
    ).encode("utf-8")
    response = response_for(node, big)
    assert response["error"]["code"] == wire.OVERSIZED_REQUEST
    assert len(node.swarm) == 0  # the blob never reached the store


# ---------------------------------------------------------------------------
# Socket-level garbage (the HTTP skin)
# ---------------------------------------------------------------------------


def http_fuzz_server():
    node = RpcNode(max_request_bytes=4096)
    return RpcHttpServer(node)


def test_http_garbage_and_bad_routes_leave_the_server_alive():
    with http_fuzz_server() as server:
        node = server.node
        before = codec.state_root(node.chain)

        # Raw non-HTTP bytes straight at the socket.
        with socket.create_connection(("127.0.0.1", server.port), 5) as sock:
            sock.sendall(b"\x00\x01garbage\r\n\r\n")
            sock.settimeout(5)
            sock.recv(1024)  # whatever http.server answers; must not hang

        transport = HttpTransport(server.url)
        try:
            # Wrong routes and verbs.
            import urllib.error
            import urllib.request

            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    "http://127.0.0.1:%d/nope" % server.port
                )
            assert err.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    urllib.request.Request(
                        "http://127.0.0.1:%d/other" % server.port,
                        data=b"{}",
                    )
                )
            assert err.value.code == 404

            # Oversized body: refused from the Content-Length header.
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    urllib.request.Request(
                        server.url, data=b"x" * 8192
                    )
                )
            assert err.value.code == 413

            # The server still answers a well-formed request afterwards.
            head = RpcChain(transport).rpc.call("chain_head")
            assert head["height"] == 0
            assert codec.state_root(node.chain) == before
        finally:
            transport.close()
