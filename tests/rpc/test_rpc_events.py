"""Cursor-paged event reads under compaction: no skips, no duplicates.

RPC readers hold *client-side* cursors — the node does not know they
exist, so :meth:`EventLog.prune` can outrun them.  The contract pinned
here: paging with a cursor that stays at or ahead of the prune base
delivers every event exactly once, across page boundaries and across
prunes; a cursor that falls *behind* the base errors loudly (events
were compacted away) instead of silently resuming past the gap.
"""

from __future__ import annotations

import pytest

from repro.chain.eventlog import EventFilter
from repro.errors import ChainError
from repro.ledger.accounts import Address
from repro.rpc import LoopbackTransport, RpcChain, RpcNode, wire
from tests.rpc.conftest import run_one_hit


@pytest.fixture
def event_node():
    """A node whose log holds one settled HIT's events, plus its client."""
    node = RpcNode()
    transport = LoopbackTransport(node)
    run_one_hit(transport)
    return node, RpcChain(transport)


def all_sequences(chain: RpcChain) -> list:
    subscription = chain.subscribe(from_start=True)
    return [record.sequence for record in subscription.poll()]


def page(chain: RpcChain, cursor: int, limit: int, **filters):
    return chain.rpc.call(
        "chain_events", cursor=cursor, limit=limit, **filters
    )


def test_paged_read_with_prune_mid_pagination(event_node):
    node, chain = event_node
    expected = all_sequences(chain)
    assert len(expected) >= 8, "scenario produced too few events to page"

    seen = []
    cursor = 0
    while True:
        result = page(chain, cursor, limit=2)
        seen.extend(item["sequence"] for item in result["records"])
        cursor = result["cursor"]
        # Compact everything this reader has consumed, *between* its
        # pages — the exact interleaving a long-running node performs.
        pruned = chain.rpc.call("node_prune", through=cursor)
        assert pruned["pruned"] <= cursor
        if cursor >= result["head"]:
            break
    assert seen == expected  # nothing skipped, nothing duplicated
    assert node.chain.event_log.pruned == len(node.chain.event_log)


def test_cursor_behind_the_prune_base_errors_loudly(event_node):
    node, chain = event_node
    head = len(node.chain.event_log)
    assert chain.rpc.call("node_prune", through=head)["pruned"] == head
    with pytest.raises(ChainError) as err:
        page(chain, 0, limit=10)
    assert "compacted away" in str(err.value)
    # A cursor at the base (or ahead) still reads cleanly.
    result = page(chain, head, limit=10)
    assert result["records"] == [] and result["cursor"] == head


def test_remote_subscription_resumes_across_prune(event_node):
    node, chain = event_node
    subscription = chain.subscribe(from_start=True)
    first = subscription.poll()
    assert first and subscription.cursor == len(node.chain.event_log)
    # Prune what the subscription consumed; its next poll is unaffected.
    chain.rpc.call("node_prune", through=subscription.cursor)
    assert subscription.poll() == []
    # New traffic lands after the base and is delivered exactly once.
    run_one_hit(LoopbackTransport(node), seed=11, label="bob")
    fresh = subscription.poll()
    assert fresh
    assert [record.sequence for record in fresh] == list(
        range(len(node.chain.event_log) - len(fresh),
              len(node.chain.event_log))
    )
    assert subscription.poll() == []


def test_stale_subscription_raises_after_compaction(event_node):
    node, chain = event_node
    stale = chain.subscribe(from_start=True)  # cursor pinned at base 0
    chain.rpc.call("node_prune", through=len(node.chain.event_log))
    with pytest.raises(ChainError):
        stale.poll()


def test_filtered_paging_tracks_scanned_position(event_node):
    node, chain = event_node
    contract = Address.from_label("contract:hit:alice")
    filtered = page(
        chain, 0, limit=1,
        contract=wire.pack(contract), names=["committed"],
    )
    assert len(filtered["records"]) == 1
    # The next cursor sits just past the match — not at the head — so a
    # second page picks up the second commit without rescanning.
    second = page(
        chain, filtered["cursor"], limit=1,
        contract=wire.pack(contract), names=["committed"],
    )
    assert len(second["records"]) == 1
    assert second["records"][0]["sequence"] > filtered["records"][0]["sequence"]
    # Exhausting the filter advances the cursor to the head.
    rest = page(
        chain, second["cursor"], limit=100,
        contract=wire.pack(contract), names=["committed"],
    )
    assert rest["records"] == []
    assert rest["cursor"] == rest["head"]


def test_events_named_matches_in_process_view(event_node):
    node, chain = event_node
    remote = chain.events_named("revealed", "hit:alice")
    local = node.chain.events_named("revealed", "hit:alice")
    assert len(remote) == len(local) == 2
    assert [event.payload["worker"] for event in remote] == [
        event.payload["worker"] for event in local
    ]
