"""Method-level behaviour of the RPC node, over both transports."""

from __future__ import annotations

import pytest

from repro.errors import RpcError
from repro.ledger.accounts import Address
from repro.rpc import LoopbackTransport, RpcChain, RpcNode, RpcSwarm, wire
from repro.store import NodeStore, codec
from repro.storage.swarm import SwarmError
from tests.rpc.conftest import run_one_hit


def test_version_reports_protocol_schema_and_methods(rpc_setup):
    node, transport = rpc_setup
    chain = RpcChain(transport)
    report = chain.rpc.version()  # raises on any mismatch
    assert report["protocol"] == wire.PROTOCOL_VERSION
    assert report["schema"] == codec.SCHEMA_VERSION
    assert set(report["methods"]) == set(node._methods)
    assert "chain_events" in report["methods"]


def test_head_block_and_mining(rpc_setup):
    node, transport = rpc_setup
    chain = RpcChain(transport)
    head = chain.rpc.call("chain_head")
    assert head == {
        "height": 0, "period": 0, "block_hash": None,
        "events": 0, "events_pruned": 0,
    }
    block = chain.mine_block()
    assert block.number == 0
    assert chain.height == 1
    assert chain.clock.period == 1
    fetched = chain.blocks[0]
    assert fetched.block_hash() == node.chain.blocks[0].block_hash()
    with pytest.raises(Exception) as err:
        chain.rpc.call("chain_block", number=7)
    assert "no block 7" in str(err.value)


def test_register_send_and_ledger_reads(rpc_setup):
    node, transport = rpc_setup
    chain = RpcChain(transport)
    alice = chain.register_account("alice", 250)
    assert alice == Address.from_label("alice")
    assert chain.ledger.balance_of(alice) == 250
    # Registration is idempotent, like the in-process registry.
    again = chain.register_account("alice", 10)
    assert again == alice
    assert chain.ledger.balance_of(alice) == 250
    assert chain.ledger.payments_to(alice) == []
    assert chain.total_gas == 0


def test_contract_replica_and_gas_after_a_hit(rpc_setup):
    node, transport = rpc_setup
    outcomes = run_one_hit(transport)
    replica = RpcChain(transport).contract("hit:alice")
    assert type(replica).__name__ == "HITContract"
    assert replica.address == Address.from_label("contract:hit:alice")
    assert replica.storage == node.chain.contract("hit:alice").storage
    assert replica.verdict_of(outcomes[0].workers[1].address) is not None
    gas = RpcChain(transport).rpc.call("chain_gas")
    assert gas["total"] == node.chain.total_gas > 0
    by_sender = wire.unpack(gas["by_sender"])
    assert by_sender == node.chain.gas_by_sender


def test_transaction_round_trip_preserves_hash(rpc_setup):
    node, transport = rpc_setup
    chain = RpcChain(transport)
    outcomes = run_one_hit(transport, seed=3)
    requester = outcomes[0].requester
    transaction = chain.send(
        requester.address, "hit:alice", "finalize", args=(), payload=b""
    )
    # The client-side reconstruction hashed identically to the node's
    # stamp (send() verifies), and the mined receipt carries it.
    block = chain.mine_block()
    assert block.transactions[-1].tx_hash() == transaction.tx_hash()


def test_swarm_gateway_round_trips_and_misses(rpc_setup):
    _, transport = rpc_setup
    swarm = RpcSwarm(transport)
    digest = swarm.put(b"question blob")
    assert swarm.get(digest) == b"question blob"
    with pytest.raises(SwarmError):
        swarm.get(b"\x00" * 32)


def test_node_status_and_checkpoint_with_store(tmp_path):
    store = NodeStore.init(str(tmp_path / "node"))
    chain, _ = store.load(apply_runtime=False)
    chain.attach_store(store)
    node = RpcNode(chain=chain, store=store)
    transport = LoopbackTransport(node)
    rpc_chain = RpcChain(transport)
    rpc_chain.register_account("alice", 50)
    rpc_chain.mine_block()
    status = rpc_chain.rpc.call("node_status")
    assert status["state_dir"] == str(tmp_path / "node")
    assert status["height"] == 1
    assert status["accounts"] == 1
    result = rpc_chain.rpc.call("node_checkpoint")
    assert result["height"] == 1
    # The snapshot on disk reaches the live chain's root.
    reloaded, meta = NodeStore.open(str(tmp_path / "node")).load()
    assert meta["state_root"].hex() == result["state_root"]
    assert codec.state_root(reloaded) == codec.state_root(node.chain)


def test_checkpoint_without_store_is_a_store_error():
    node = RpcNode()
    chain = RpcChain(LoopbackTransport(node))
    with pytest.raises(Exception) as err:
        chain.rpc.call("node_checkpoint")
    assert "state directory" in str(err.value)


def test_client_refuses_incompatible_server_version():
    node = RpcNode()
    transport = LoopbackTransport(node)
    original = node._rpc_version
    node._methods["rpc_version"] = lambda params: {
        **original(params), "protocol": 999
    }
    with pytest.raises(RpcError) as err:
        RpcChain(transport).rpc.version()
    assert "protocol" in str(err.value)


# ---------------------------------------------------------------------------
# Server lifecycle
# ---------------------------------------------------------------------------


def test_shutdown_stops_a_serve_forever_server():
    """Regression: ``shutdown()`` only worked after ``start()``.

    In ``serve_forever()`` mode (the CLI path) ``self._thread`` is
    None, and the old code skipped ``self._httpd.shutdown()`` entirely
    — then called ``server_close()`` under a still-running accept
    loop.  ``shutdown()`` must stop the loop in both modes.
    """
    import threading
    import time

    from repro.rpc import HttpTransport, RpcHttpServer

    node = RpcNode()
    server = RpcHttpServer(node)
    runner = threading.Thread(target=server.serve_forever, daemon=True)
    runner.start()
    deadline = time.time() + 10
    while not server._serving.is_set() and time.time() < deadline:
        time.sleep(0.01)
    assert server._serving.is_set(), "serve_forever never started serving"
    # Prove it serves, then stop it from another thread — the exact
    # shape of the CLI's SIGINT handler running shutdown() mid-serve.
    transport = HttpTransport(server.url)
    assert RpcChain(transport).height == 0
    transport.close()
    server.shutdown()
    runner.join(timeout=10)
    assert not runner.is_alive(), "serve_forever did not stop"
    assert not server._serving.is_set()
    server.shutdown()  # idempotent: a second call must not deadlock


def test_shutdown_before_serving_does_not_deadlock():
    """``BaseServer.shutdown()`` hangs if ``serve_forever`` never ran;
    the wrapper must not (the CLI can die between bind and serve)."""
    from repro.rpc import RpcHttpServer

    server = RpcHttpServer(RpcNode())
    server.shutdown()  # must return promptly, socket closed
