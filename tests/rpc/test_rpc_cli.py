"""`node rpc-serve`: a real out-of-process node, driven over a socket.

The one test in the suite where client and server are *different
processes* — the deployment story the whole subsystem exists for.  The
CLI binds an ephemeral port, serves requests from this process's
:class:`~repro.rpc.client.HttpTransport`, persists its state on SIGINT,
and `node status` agrees with what the client did to it.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.rpc import HttpTransport, PushSubscription, RpcChain

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_parser_wires_rpc_serve():
    args = build_parser().parse_args(
        ["node", "rpc-serve", "--state-dir", "./x", "--port", "0"]
    )
    assert args.func.__name__ == "_cmd_node_rpc_serve"
    assert args.host == "127.0.0.1" and args.port == 0
    assert args.use_async is False
    assert args.admin_token == [] and args.submit_token == []


def test_parser_wires_async_and_auth_flags():
    args = build_parser().parse_args(
        ["node", "rpc-serve", "--state-dir", "./x", "--async",
         "--admin-token", "root", "--submit-token", "s1",
         "--submit-token", "s2"]
    )
    assert args.use_async is True
    assert args.admin_token == ["root"]
    assert args.submit_token == ["s1", "s2"]


def _cli_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    return env


def _spawn_rpc_serve(state_dir, *extra_args, env=None):
    """Start ``node rpc-serve`` and return ``(proc, port)`` once bound."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "node", "rpc-serve",
         "--state-dir", state_dir, "--port", "0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env or _cli_env(),
    )
    port = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            port = int(line.split("listening on http://")[1]
                       .split("/")[0].split(":")[1])
            break
    assert port, "rpc-serve never announced its port"
    return proc, port


def test_rpc_serve_round_trip_out_of_process(tmp_path):
    state_dir = str(tmp_path / "node")
    env = _cli_env()
    proc, port = _spawn_rpc_serve(state_dir, env=env)
    try:
        transport = HttpTransport("http://127.0.0.1:%d/rpc" % port)
        chain = RpcChain(transport)
        chain.rpc.version()
        alice = chain.register_account("alice", 123)
        assert chain.ledger.balance_of(alice) == 123
        block = chain.mine_block()
        assert block.number == 0 and chain.height == 1
        status = chain.rpc.call("node_status")
        assert status["state_dir"] == state_dir
        served_root = chain.state_root()
        transport.close()
    finally:
        # SIGTERM, not SIGINT: the CI lane stops a shell-backgrounded
        # server this way (backgrounded processes ignore SIGINT), so
        # the graceful-shutdown path under test is the deployed one.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0

    # The shutdown handler snapshotted the served state; a cold `node
    # status` load reaches the same root the live node reported.
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "node", "status",
         "--state-dir", state_dir],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert served_root.hex()[:32] in result.stdout
    assert "| height               | 1" in result.stdout


def _assert_cold_status_height(state_dir, env, height: int) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "node", "status",
         "--state-dir", state_dir],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "| height               | %d" % height in result.stdout
    return result.stdout


def test_rpc_serve_sigint_exits_cleanly_with_loadable_snapshot(tmp_path):
    """Ctrl-C is the documented stop; it must snapshot, not crash.

    Regression for the PR-5 lifecycle bug: ``RpcHttpServer.shutdown()``
    skipped ``self._httpd.shutdown()`` in ``serve_forever()`` mode (the
    CLI path) and closed the listening socket under a still-running
    accept loop, so the SIGINT snapshot path raced the server teardown.
    """
    state_dir = str(tmp_path / "node")
    env = _cli_env()
    proc, port = _spawn_rpc_serve(state_dir, env=env)
    try:
        transport = HttpTransport("http://127.0.0.1:%d/rpc" % port)
        chain = RpcChain(transport)
        chain.register_account("alice", 7)
        chain.mine_block()
        transport.close()
    finally:
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=30) == 0
    remaining = proc.stdout.read()
    assert "node state saved to %s" % state_dir in remaining
    _assert_cold_status_height(state_dir, env, 1)


def test_rpc_serve_async_out_of_process(tmp_path):
    """The asyncio front-end behind the CLI: requests, push, snapshot."""
    state_dir = str(tmp_path / "node")
    env = _cli_env()
    proc, port = _spawn_rpc_serve(state_dir, "--async", env=env)
    try:
        url = "http://127.0.0.1:%d/rpc" % port
        transport = HttpTransport(url)
        chain = RpcChain(transport)
        chain.rpc.version()
        alice = chain.register_account("alice", 123)
        assert chain.ledger.balance_of(alice) == 123
        # A push stream across process boundaries: subscribe, mine,
        # and the pushed head cursor must land at the node's head.
        subscription = PushSubscription(url, from_start=True)
        assert chain.mine_block().number == 0
        batch = chain.rpc.call_batch(
            [("chain_head", {}), ("chain_state_root", {})]
        )
        assert batch[0]["height"] == 1
        served_root = batch[1]["state_root"]
        subscription.close()
        transport.close()
    finally:
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=30) == 0
    remaining = proc.stdout.read()
    assert "node state saved to %s" % state_dir in remaining
    stdout = _assert_cold_status_height(state_dir, env, 1)
    assert served_root[:32] in stdout


def test_rpc_serve_async_auth_gates_out_of_process(tmp_path):
    """``--admin-token`` over the wire: refused without, admitted with."""
    state_dir = str(tmp_path / "node")
    env = _cli_env()
    proc, port = _spawn_rpc_serve(
        state_dir, "--async", "--admin-token", "hunter2", env=env
    )
    try:
        transport = HttpTransport("http://127.0.0.1:%d/rpc" % port)
        open_chain = RpcChain(transport)
        assert open_chain.height == 0  # reads stay open
        with pytest.raises(Exception) as err:
            open_chain.register_account("eve", 1)
        assert "authorized token" in str(err.value)
        authed = RpcChain(transport, auth="hunter2")
        authed.register_account("alice", 1)
        authed.mine_block()
        assert open_chain.height == 1
        transport.close()
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
