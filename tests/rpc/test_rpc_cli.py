"""`node rpc-serve`: a real out-of-process node, driven over a socket.

The one test in the suite where client and server are *different
processes* — the deployment story the whole subsystem exists for.  The
CLI binds an ephemeral port, serves requests from this process's
:class:`~repro.rpc.client.HttpTransport`, persists its state on SIGINT,
and `node status` agrees with what the client did to it.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.rpc import HttpTransport, RpcChain

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_parser_wires_rpc_serve():
    args = build_parser().parse_args(
        ["node", "rpc-serve", "--state-dir", "./x", "--port", "0"]
    )
    assert args.func.__name__ == "_cmd_node_rpc_serve"
    assert args.host == "127.0.0.1" and args.port == 0


def test_rpc_serve_round_trip_out_of_process(tmp_path):
    state_dir = str(tmp_path / "node")
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "node", "rpc-serve",
         "--state-dir", state_dir, "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        port = None
        deadline = time.time() + 30
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            if "listening on" in line:
                port = int(line.split("listening on http://")[1]
                           .split("/")[0].split(":")[1])
                break
        assert port, "rpc-serve never announced its port"

        transport = HttpTransport("http://127.0.0.1:%d/rpc" % port)
        chain = RpcChain(transport)
        chain.rpc.version()
        alice = chain.register_account("alice", 123)
        assert chain.ledger.balance_of(alice) == 123
        block = chain.mine_block()
        assert block.number == 0 and chain.height == 1
        status = chain.rpc.call("node_status")
        assert status["state_dir"] == state_dir
        served_root = chain.state_root()
        transport.close()
    finally:
        # SIGTERM, not SIGINT: the CI lane stops a shell-backgrounded
        # server this way (backgrounded processes ignore SIGINT), so
        # the graceful-shutdown path under test is the deployed one.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0

    # The shutdown handler snapshotted the served state; a cold `node
    # status` load reaches the same root the live node reported.
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "node", "status",
         "--state-dir", state_dir],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert served_root.hex()[:32] in result.stdout
    assert "| height               | 1" in result.stdout
