"""The RPC equivalence contract: the wire changes nothing.

The same seeded scenario — staggered arrivals, sequential *and* batched
evaluation, an accepted worker, a quality rejection, an out-of-range
dispute — runs once through in-process clients on a local
:class:`~repro.chain.chain.Chain` and once through
:class:`~repro.rpc.client.RpcRequesterClient` /
:class:`~repro.rpc.client.RpcWorkerClient` against an
:class:`~repro.rpc.server.RpcNode`.  The two runs must agree **byte for
byte**: every receipt (canonically encoded), every GasReport slot and
extra, every payment and verdict, and the final ``state_root``.

This is the contract that makes the RPC boundary safe to deploy behind:
an encoding bug, a lost field, a reordered draw — anything the wire
could distort — lands here as a byte diff.
"""

from __future__ import annotations

import pytest

from repro.chain.chain import Chain
from repro.chain.transactions import scoped_tx_nonces
from repro.core.requester import RequesterClient
from repro.core.worker import WorkerClient
from repro.crypto.rng import deterministic_entropy
from repro.rpc import HitSpec, LoopbackTransport, RpcChain, RpcNode, RpcSwarm, run_hits
from repro.storage.swarm import SwarmStore
from repro.store import codec
from tests.helpers import small_task
from tests.rpc.conftest import rpc_client_factories

SEED = 1307


def scenario_specs():
    """Staggered tasks covering every evaluation path over the wire."""
    return [
        # Sequential evaluation: one accept, one PoQoEA quality rejection.
        HitSpec(0, "alice", small_task(), [[0] * 10, [1] * 10]),
        # Batched evaluation arriving mid-stream: everyone accepted.
        HitSpec(1, "bob", small_task(), [[0] * 10, [0] * 10],
                evaluation="batched"),
        # Batched with a rejection and an out-of-range dispute (the VPKE
        # verifiable-decryption path), three workers.
        HitSpec(3, "carol", small_task(num_workers=3, budget=99),
                [[0] * 10, [1] * 10, [2] * 10], evaluation="batched"),
    ]


def run_in_process(specs):
    chain, swarm = Chain(), SwarmStore()
    outcomes = run_hits(
        chain,
        swarm,
        specs,
        lambda label, task: RequesterClient(label, task, chain, swarm),
        lambda label, answers: WorkerClient(label, chain, swarm,
                                            answers=answers),
    )
    return chain, outcomes


def run_over_rpc(specs, transport):
    requester_factory, worker_factory = rpc_client_factories(transport)
    return run_hits(
        RpcChain(transport),
        RpcSwarm(transport),
        specs,
        requester_factory,
        worker_factory,
    )


def canonical_receipts(outcome) -> bytes:
    return codec.encode(
        [codec.receipt_to_data(receipt) for receipt in outcome.receipts]
    )


def gas_as_data(report) -> dict:
    return {
        "publish": report.publish,
        "commits": dict(report.commits),
        "reveals": dict(report.reveals),
        "golden": report.golden,
        "rejections": dict(report.rejections),
        "finalize": report.finalize,
        "extras": dict(report.extras),
        "total": report.total,
    }


@pytest.fixture(scope="module")
def equivalent_runs():
    """Both paths, one seed, loopback transport (the fast full scenario)."""
    specs = scenario_specs()
    with scoped_tx_nonces(), deterministic_entropy(SEED):
        chain, in_process = run_in_process(specs)
    node = RpcNode()
    transport = LoopbackTransport(node)
    with scoped_tx_nonces(), deterministic_entropy(SEED):
        over_rpc = run_over_rpc(specs, transport)
    return chain, in_process, node, over_rpc, transport


def test_receipts_are_byte_identical(equivalent_runs):
    _, in_process, _, over_rpc, _ = equivalent_runs
    assert len(in_process) == len(over_rpc) == 3
    for local, remote in zip(in_process, over_rpc):
        assert local.receipts, "scenario produced no receipts"
        assert canonical_receipts(local) == canonical_receipts(remote)


def test_gas_reports_match_slot_for_slot(equivalent_runs):
    _, in_process, _, over_rpc, _ = equivalent_runs
    for local, remote in zip(in_process, over_rpc):
        assert gas_as_data(local.gas) == gas_as_data(remote.gas)


def test_payments_and_verdicts_match(equivalent_runs):
    _, in_process, _, over_rpc, _ = equivalent_runs
    for local, remote in zip(in_process, over_rpc):
        assert local.payments() == remote.payments()
        assert local.verdicts() == remote.verdicts()
    # The scenario genuinely exercised all three evaluation outcomes.
    kinds = {
        action.kind for outcome in in_process for action in outcome.actions
    }
    assert kinds == {"accept", "reject-quality", "reject-outrange"}


def test_state_roots_are_identical(equivalent_runs):
    chain, _, node, _, transport = equivalent_runs
    assert codec.state_root(chain) == codec.state_root(node.chain)
    # And the wire agrees with the server's own computation.
    assert RpcChain(transport).state_root() == codec.state_root(node.chain)


def test_chain_shapes_match(equivalent_runs):
    chain, _, node, _, _ = equivalent_runs
    assert chain.height == node.chain.height
    assert chain.total_gas == node.chain.total_gas
    assert [block.block_hash() for block in chain.blocks] == [
        block.block_hash() for block in node.chain.blocks
    ]


def test_single_hit_equivalence_over_each_transport(rpc_setup):
    """The one-task contract holds over loopback *and* a real socket."""
    node, transport = rpc_setup
    specs = [HitSpec(0, "alice", small_task(), [[0] * 10, [1] * 10])]
    with scoped_tx_nonces(), deterministic_entropy(SEED):
        chain, in_process = run_in_process(specs)
    with scoped_tx_nonces(), deterministic_entropy(SEED):
        over_rpc = run_over_rpc(specs, transport)
    assert canonical_receipts(in_process[0]) == canonical_receipts(over_rpc[0])
    assert gas_as_data(in_process[0].gas) == gas_as_data(over_rpc[0].gas)
    assert in_process[0].payments() == over_rpc[0].payments()
    assert codec.state_root(chain) == codec.state_root(node.chain)
