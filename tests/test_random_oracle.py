"""The programmable random oracle: defaults, programming, consistency."""

import pytest

from repro.crypto.keccak import keccak256
from repro.crypto.random_oracle import (
    OracleConsistencyError,
    RandomOracle,
    default_oracle,
)
from repro.errors import CryptoError


def test_unprogrammed_query_is_keccak():
    oracle = RandomOracle()
    assert oracle.query(b"hello") == keccak256(b"hello")


def test_query_int_reduces_mod():
    oracle = RandomOracle()
    assert oracle.query_int(b"x", 97) == int.from_bytes(keccak256(b"x"), "big") % 97


def test_programming_overrides_answer():
    oracle = RandomOracle()
    answer = b"\x42" * 32
    oracle.program(b"point", answer)
    assert oracle.query(b"point") == answer
    assert oracle.is_programmed(b"point")


def test_programming_requires_32_bytes():
    oracle = RandomOracle()
    with pytest.raises(CryptoError):
        oracle.program(b"point", b"short")


def test_cannot_reprogram_observed_point():
    oracle = RandomOracle()
    oracle.query(b"seen")
    with pytest.raises(OracleConsistencyError):
        oracle.program(b"seen", b"\x01" * 32)


def test_reprogramming_same_answer_is_idempotent():
    oracle = RandomOracle()
    answer = b"\x07" * 32
    oracle.program(b"p", answer)
    oracle.program(b"p", answer)  # no error
    assert oracle.query(b"p") == answer


def test_conflicting_programming_rejected():
    oracle = RandomOracle()
    oracle.program(b"p", b"\x01" * 32)
    with pytest.raises(OracleConsistencyError):
        oracle.program(b"p", b"\x02" * 32)


def test_programming_observed_point_with_its_real_answer_is_fine():
    oracle = RandomOracle()
    real = oracle.query(b"q")
    oracle.program(b"q", real)
    assert oracle.query(b"q") == real


def test_reset_clears_programming():
    oracle = RandomOracle()
    oracle.program(b"p", b"\x01" * 32)
    oracle.reset()
    assert not oracle.is_programmed(b"p")
    assert oracle.query(b"p") == keccak256(b"p")


def test_default_oracle_is_singleton():
    assert default_oracle() is default_oracle()


def test_programmed_count():
    oracle = RandomOracle()
    assert oracle.programmed_count == 0
    oracle.program(b"a", b"\x00" * 32)
    oracle.program(b"b", b"\x00" * 32)
    assert oracle.programmed_count == 2
