"""Batch VPKE verification (small-exponent random linear combination)."""

import pytest

from repro.crypto.elgamal import keygen
from repro.crypto.vpke import (
    DecryptionProof,
    prove_decryption,
    verify_decryption,
    verify_decryption_batch,
)


@pytest.fixture(scope="module")
def batch():
    pk, sk = keygen(secret=0xBA7C4)
    statements = []
    for message in (0, 1, 0, 1, 1):
        ciphertext = pk.encrypt(message)
        claim, proof = prove_decryption(sk, ciphertext, range(2))
        statements.append((claim, ciphertext, proof))
    return pk, sk, statements


def test_batch_accepts_honest_proofs(batch):
    pk, _, statements = batch
    assert verify_decryption_batch(pk, statements)


def test_empty_batch_accepts(batch):
    pk, _, _ = batch
    assert verify_decryption_batch(pk, [])


def test_batch_rejects_one_wrong_claim(batch):
    pk, _, statements = batch
    claim, ciphertext, proof = statements[2]
    tampered = statements[:2] + [(1 - claim, ciphertext, proof)] + statements[3:]
    assert not verify_decryption_batch(pk, tampered)


def test_batch_rejects_tampered_proof(batch):
    pk, _, statements = batch
    from repro.crypto.curve import G1Point

    claim, ciphertext, proof = statements[0]
    bad = DecryptionProof(
        proof.commitment_a + G1Point.generator(),
        proof.commitment_b,
        proof.response,
    )
    assert not verify_decryption_batch(
        pk, [(claim, ciphertext, bad)] + statements[1:]
    )


def test_batch_rejects_swapped_proofs(batch):
    """Proofs are bound to their ciphertexts; swapping two must fail."""
    pk, _, statements = batch
    a, b = statements[0], statements[1]
    swapped = [
        (a[0], a[1], b[2]),
        (b[0], b[1], a[2]),
    ] + statements[2:]
    assert not verify_decryption_batch(pk, swapped)


def test_batch_agrees_with_individual_verification(batch):
    pk, _, statements = batch
    individually = all(
        verify_decryption(pk, claim, ciphertext, proof)
        for claim, ciphertext, proof in statements
    )
    assert individually == verify_decryption_batch(pk, statements)


def test_single_statement_batch(batch):
    pk, _, statements = batch
    assert verify_decryption_batch(pk, statements[:1])
