"""Stateful property testing of the ledger (hypothesis state machine).

Random interleavings of freeze / pay / transfer / fee / snapshot-restore
must preserve the two global invariants: total supply is constant, and
no balance or escrow ever goes negative.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.errors import EscrowError, InsufficientFunds
from repro.ledger.accounts import Address
from repro.ledger.ledger import Ledger

PARTIES = [Address.from_label("p%d" % i) for i in range(4)]
CONTRACTS = [Address.from_label("c%d" % i) for i in range(2)]
INITIAL = 1_000


class LedgerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.ledger = Ledger()
        for party in PARTIES:
            self.ledger.open_account(party, INITIAL)
        self.supply = self.ledger.total_supply()
        self.saved = None

    @rule(party=st.sampled_from(PARTIES), contract=st.sampled_from(CONTRACTS),
          amount=st.integers(min_value=0, max_value=400))
    def freeze(self, party, contract, amount):
        self.ledger.freeze(contract, party, amount)

    @rule(party=st.sampled_from(PARTIES), contract=st.sampled_from(CONTRACTS),
          amount=st.integers(min_value=0, max_value=400))
    def pay(self, party, contract, amount):
        try:
            self.ledger.pay(contract, party, amount)
        except EscrowError:
            pass

    @rule(source=st.sampled_from(PARTIES), destination=st.sampled_from(PARTIES),
          amount=st.integers(min_value=0, max_value=400))
    def transfer(self, source, destination, amount):
        try:
            self.ledger.transfer(source, destination, amount)
        except InsufficientFunds:
            pass

    @rule(party=st.sampled_from(PARTIES),
          amount=st.integers(min_value=0, max_value=100))
    def fee(self, party, amount):
        try:
            self.ledger.charge_fee(party, amount)
        except InsufficientFunds:
            pass

    @rule()
    def snapshot(self):
        self.saved = self.ledger.snapshot()

    @rule()
    def restore(self):
        if self.saved is not None:
            self.ledger.restore(self.saved)

    @invariant()
    def supply_conserved(self):
        assert self.ledger.total_supply() == self.supply

    @invariant()
    def no_negative_balances(self):
        for party in PARTIES:
            assert self.ledger.balance_of(party) >= 0
        for contract in CONTRACTS:
            assert self.ledger.escrow_of(contract) >= 0


TestLedgerMachine = LedgerMachine.TestCase
TestLedgerMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
