"""Persistent node state: WAL replay, snapshots, checkpoint/resume.

The acceptance contract of the persistence subsystem (PR 4):

* **Round-trip property** — for preset scenarios, ``save → load →
  continue`` produces a :class:`SimulationReport` byte-for-byte
  identical to the uninterrupted seeded run, *including gas and the
  final* ``state_root``.
* **Crash recovery** — snapshot + WAL replay reaches the same
  ``state_root`` the lost process had, and a torn WAL tail is ignored
  cleanly.
* **Compaction carries to disk** — ``EventLog.prune()`` is journalled;
  pruned records are absent from what disk holds, while global
  sequence numbers and live cursor subscriptions survive a save/load
  round trip.
* **Entropy continuity** — the deterministic stream resumes at its
  saved (counter, offset) position instead of restarting.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.chain.chain import Chain
from repro.chain.eventlog import EventFilter
from repro.chain.transactions import (
    nonce_position,
    scoped_tx_nonces,
)
from repro.core.task import HITTask, TaskParameters
from repro.crypto.rng import DeterministicStream, deterministic_entropy, entropy
from repro.dragoon import Dragoon
from repro.sim import preset, resume_scenario, run_scenario
from repro.sim.runner import InterruptedRun
from repro.store import NodeStore, StoreError, state_root
from repro.store.blockstore import BlockStore


def tiny_task() -> HITTask:
    parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
    return HITTask(
        parameters,
        ["q%d" % i for i in range(10)],
        [0, 1, 2],
        [0, 0, 0],
        [0] * 10,
    )


def run_one_task(dragoon: Dragoon) -> None:
    dragoon.fund("alice", 500)
    dragoon.run_task("alice", tiny_task(), [[0] * 10, [1] * 10])


# ---------------------------------------------------------------------------
# Entropy stream save/restore
# ---------------------------------------------------------------------------


def test_deterministic_stream_resumes_mid_byte():
    straight = DeterministicStream(9)
    reference = straight.take(100)

    prefix_stream = DeterministicStream(9)
    prefix = prefix_stream.take(37)
    resumed = DeterministicStream.from_state(prefix_stream.state())
    assert prefix + resumed.take(63) == reference


def test_entropy_source_state_round_trip():
    with deterministic_entropy(4):
        entropy.getrandbits(129)
        entropy.randbelow(10**30)
        saved = entropy.save_state()
        straight = [entropy.randbelow(1000) for _ in range(20)]
    with deterministic_entropy(4, state=saved):
        resumed = [entropy.randbelow(1000) for _ in range(20)]
    assert resumed == straight


def test_os_entropy_has_no_stream_state():
    assert entropy.save_state() is None
    assert not entropy.deterministic


def test_deterministic_entropy_nests_and_restores():
    with deterministic_entropy(1):
        outer = entropy.save_state()
        with deterministic_entropy(2):
            assert entropy.save_state() != outer
        assert entropy.save_state() == outer
    assert entropy.save_state() is None


def test_scoped_nonces_restore_the_global_counter():
    before = nonce_position()
    with scoped_tx_nonces():
        assert nonce_position() == 0
        Chain()  # no transactions; position stays
        with scoped_tx_nonces(100):
            assert nonce_position() == 100
        assert nonce_position() == 0
    assert nonce_position() == before


# ---------------------------------------------------------------------------
# WAL + snapshot crash recovery
# ---------------------------------------------------------------------------


def test_wal_replay_reaches_the_live_state_root(tmp_path):
    store = NodeStore.init(str(tmp_path / "node"))
    with scoped_tx_nonces(), deterministic_entropy(3):
        dragoon = Dragoon()
        dragoon.chain.attach_store(store)
        run_one_task(dragoon)
        live_root = state_root(dragoon.chain)
        restored, meta = store.load()
    assert meta["replayed"] == dragoon.chain.height
    assert state_root(restored) == live_root
    assert restored.height == dragoon.chain.height


def test_snapshot_plus_wal_recovery(tmp_path):
    store = NodeStore.init(str(tmp_path / "node"))
    with scoped_tx_nonces(), deterministic_entropy(3):
        dragoon = Dragoon()
        dragoon.chain.attach_store(store)
        run_one_task(dragoon)
        store.save(dragoon.chain)  # snapshot; WAL resets
        dragoon.run_task("alice", tiny_task(), [[0] * 10, [0] * 10])
        live_root = state_root(dragoon.chain)
        restored, meta = store.load()
    assert 0 < meta["replayed"] < restored.height  # replayed the tail only
    assert state_root(restored) == live_root


def test_torn_wal_tail_is_ignored(tmp_path):
    store = NodeStore.init(str(tmp_path / "node"))
    with scoped_tx_nonces(), deterministic_entropy(3):
        dragoon = Dragoon()
        dragoon.chain.attach_store(store)
        run_one_task(dragoon)
    wal_path = os.path.join(store.state_dir, "wal.log")
    intact = len(list(store.wal.records()))
    with open(wal_path, "ab") as handle:
        handle.write(b"\x00\x00\x01\x00garbage-of-a-torn-append")
    store.wal.close()
    assert len(list(BlockStore(wal_path).records())) == intact
    restored, meta = store.load()
    assert meta["replayed"] == intact


def test_append_after_a_torn_tail_truncates_the_tear(tmp_path):
    """A new process appending to a WAL that ends in a torn record must
    cut the tear first — otherwise every record it journals afterwards
    sits behind the bad frame and is unreachable at recovery."""
    path = str(tmp_path / "wal.log")
    wal = BlockStore(path)
    wal.append({"n": 1})
    wal.append({"n": 2})
    wal.close()
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) - 3)  # tear record 2

    second = BlockStore(path)  # the restarted process
    second.append({"n": 3})
    second.close()
    assert [r["n"] for r in BlockStore(path).records()] == [1, 3]


def test_snapshots_are_garbage_collected(tmp_path):
    """save() keeps only the live snapshot files (manifest + checkpoint
    heights); a long checkpointed run must not accumulate O(n) full
    snapshots."""
    store = NodeStore.init(str(tmp_path / "node"))
    with scoped_tx_nonces(), deterministic_entropy(3):
        dragoon = Dragoon()
        dragoon.attach_store(store)
        for _ in range(3):
            run_one_task(dragoon)
            store.save(dragoon.chain)
    snapshot_dir = os.path.join(store.state_dir, "snapshots")
    remaining = sorted(os.listdir(snapshot_dir))
    assert remaining == [os.path.basename(store.manifest()["snapshot"])]


def test_corrupted_snapshot_is_refused(tmp_path):
    store = NodeStore.init(str(tmp_path / "node"))
    manifest = store.manifest()
    path = os.path.join(store.state_dir, manifest["snapshot"])
    blob = bytearray(open(path, "rb").read())
    blob[-3] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    with pytest.raises(StoreError):
        store.load()


def test_mint_and_ensure_funds_top_up_persistent_accounts():
    dragoon = Dragoon()
    address = dragoon.fund("alice", 30)
    dragoon.ensure_funds("alice", 100)
    assert dragoon.chain.ledger.balance_of(address) == 100
    dragoon.ensure_funds("alice", 50)  # already covered: no-op
    assert dragoon.chain.ledger.balance_of(address) == 100
    supply = dragoon.chain.ledger.total_supply()
    assert supply == 100  # the top-up minted exactly the difference


def test_node_state_round_trip_keeps_requester_keys(tmp_path):
    """The serve --state-dir story: keys and task serial survive."""
    state_dir = str(tmp_path / "node")
    with scoped_tx_nonces(), deterministic_entropy(5):
        store = NodeStore.init(state_dir)
        dragoon = Dragoon()
        dragoon.chain.attach_store(store)
        run_one_task(dragoon)
        key_bytes = dragoon.requester_public_key_bytes("alice")
        store.save(dragoon.chain, extra=dragoon.node_state())

        chain, meta = store.load(apply_runtime=True)
        revived = Dragoon(chain=chain)
        revived.restore_node_state(meta["extra"])
        assert revived.requester_public_key_bytes("alice") == key_bytes
        revived.chain.attach_store(store)
        revived.ensure_funds("alice", 100)
        outcome = revived.run_task(
            "alice", tiny_task(), [[0] * 10, [0] * 10]
        )
        # The new task's contract name continued the serial — no clash.
        assert outcome.contract.name == "hit:alice:1"
        assert state_root(store.load()[0]) == state_root(revived.chain)


# ---------------------------------------------------------------------------
# Event-log compaction across save/load (satellite: prune round trip)
# ---------------------------------------------------------------------------


def _settled_store(tmp_path):
    store = NodeStore.init(str(tmp_path / "node"))
    with scoped_tx_nonces(), deterministic_entropy(3):
        dragoon = Dragoon()
        dragoon.chain.attach_store(store)
        run_one_task(dragoon)
    return store, dragoon


def test_prune_compaction_carries_to_disk(tmp_path):
    store, dragoon = _settled_store(tmp_path)
    chain = dragoon.chain
    total = len(chain.event_log)
    assert total > 4
    cursor = chain.subscribe(from_start=True)
    cursor.poll()  # consume everything: prune may drop all
    dragoon.engine._subscription.poll()  # the engine's cursor pins too
    dropped = chain.event_log.prune(through=4)
    assert dropped == 4
    store.note_prune(chain)
    live_root = state_root(chain)

    restored, meta = store.load()
    assert restored.event_log.pruned == 4
    assert len(restored.event_log) == total  # global sequences preserved
    assert [r.sequence for r in restored.event_log] == list(range(4, total))
    assert state_root(restored) == live_root
    assert store.save(restored) == live_root


def test_pruned_records_absent_from_snapshot_bytes(tmp_path):
    """After a prune, the snapshot's event-log section holds only the
    retained records (compaction really reaches disk), while the base
    offset keeps global sequence numbers intact."""
    from repro.store import codec
    from repro.store.blockstore import SNAPSHOT_MAGIC

    store, dragoon = _settled_store(tmp_path)
    chain = dragoon.chain
    total = len(chain.event_log)

    def snapshot_log():
        blob = open(
            os.path.join(store.state_dir, store.manifest()["snapshot"]), "rb"
        ).read()
        envelope = codec.decode(blob[len(SNAPSHOT_MAGIC):])
        return codec.decode(envelope["state"])["event_log"]

    store.save(chain)
    assert len(snapshot_log()["records"]) == total

    chain.subscribe(from_start=True).poll()
    dragoon.engine._subscription.poll()
    dropped = chain.event_log.prune()
    assert dropped == total
    store.note_prune(chain)
    store.save(chain)
    compacted = snapshot_log()
    assert compacted["records"] == []  # pruned records are gone from disk
    assert compacted["base"] == total  # ...but sequences keep counting
    restored, _ = store.load()
    assert len(restored.event_log) == total
    assert restored.event_log.pruned == total


def test_live_cursors_survive_a_checkpoint_round_trip(tmp_path):
    """Subscriptions (cursors into the log) pickle with their log and
    keep absolute positions across prune + save/load."""
    store, dragoon = _settled_store(tmp_path)
    chain = dragoon.chain
    early = chain.subscribe(from_start=True)
    seen = [record.sequence for record in early.poll()][:3]
    filtered = chain.subscribe(EventFilter(names=["finalized"]), from_start=True)

    blob = pickle.dumps({"chain": chain, "early": early, "filtered": filtered})
    revived = pickle.loads(blob)
    assert revived["early"].cursor == early.cursor
    names = [r.event.name for r in revived["filtered"].poll()]
    assert names == ["finalized"]
    assert seen == [0, 1, 2]
    # The revived log still prunes safely around its live cursors: the
    # weak registry was rebuilt, so the consumed records can go while
    # poll semantics stay intact.
    dropped = revived["chain"].event_log.prune()
    assert dropped > 0
    assert revived["early"].poll() == []


# ---------------------------------------------------------------------------
# The round-trip property: interrupted + resumed == uninterrupted
# ---------------------------------------------------------------------------


def _round_trip(tmp_path, name: str, seed: int = 5, tasks: int = 6):
    scenario = preset(name, seed=seed, tasks=tasks)
    baseline = run_scenario(scenario, keep_objects=True)
    baseline_root = state_root(baseline.dragoon.chain)
    half = max(1, baseline.report.blocks // 2)

    store = NodeStore.init(str(tmp_path / ("rt-" + name)))
    marker = run_scenario(
        scenario, store=store, checkpoint_every=3, interrupt_after=half
    )
    assert isinstance(marker, InterruptedRun)
    assert marker.step == half

    resumed = resume_scenario(store.state_dir, keep_objects=True)
    assert resumed.report.to_json() == baseline.report.to_json()
    assert state_root(resumed.dragoon.chain) == baseline_root
    # Crash recovery from the same directory reaches the same root.
    recovered, _meta = store.load()
    assert state_root(recovered) == baseline_root
    return store


def test_resume_round_trip_poisson(tmp_path):
    _round_trip(tmp_path, "poisson")


def test_resume_round_trip_adversarial(tmp_path):
    """Stragglers and dropouts (deferred steps, cancel timers) survive
    the continuation pickle."""
    _round_trip(tmp_path, "adversarial")


def test_resume_round_trip_closed_loop(tmp_path):
    """The feedback regime: pending republish arrivals travel by value."""
    _round_trip(tmp_path, "closed-loop")


@pytest.mark.slow
@pytest.mark.parametrize("name", ["burst", "diurnal"])
def test_resume_round_trip_remaining_presets(tmp_path, name):
    _round_trip(tmp_path, name)


def test_checkpoint_never_lands_on_the_final_step(tmp_path):
    """checkpoint_every=1 forces a checkpoint candidate at every step,
    including the run's last one; the loop must skip that final write
    (the run is already quiescent) or resuming it would mine an extra
    empty block and break byte-for-byte."""
    scenario = preset("poisson", seed=7, tasks=4)
    baseline = run_scenario(scenario)
    store = NodeStore.init(str(tmp_path / "dense"))
    run_scenario(scenario, store=store, checkpoint_every=1)
    last = store.manifest()["checkpoints"][-1]["step"]
    assert last < baseline.blocks  # no checkpoint at the quiescent step
    resumed = resume_scenario(store.state_dir)
    assert resumed.to_json() == baseline.to_json()


def test_resume_from_an_early_checkpoint(tmp_path):
    """Resuming an *older* checkpoint (not the interrupt point) still
    converges to the identical report: every checkpoint is a complete
    continuation, not a delta against a later one."""
    scenario = preset("poisson", seed=11, tasks=5)
    baseline = run_scenario(scenario)
    store = NodeStore.init(str(tmp_path / "early"))
    run_scenario(scenario, store=store, checkpoint_every=4, interrupt_after=8)
    report = resume_scenario(store.state_dir, step=4)
    assert report.to_json() == baseline.to_json()


def test_checkpointing_does_not_disturb_the_run(tmp_path):
    """Observing (journalling + checkpointing) a run must not change
    it: the checkpointed run's report equals the plain run's."""
    scenario = preset("poisson", seed=2, tasks=5)
    plain = run_scenario(scenario)
    store = NodeStore.init(str(tmp_path / "observed"))
    observed = run_scenario(scenario, store=store, checkpoint_every=2)
    assert observed.to_json() == plain.to_json()


def test_checkpoint_requires_a_store():
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        run_scenario(preset("poisson", tasks=2), checkpoint_every=4)


def test_facade_state_recovers_from_the_wal_after_a_crash(tmp_path):
    """Requester keys and the task serial ride the WAL: a node that
    dies *before* any explicit save still recovers them (crash loses
    at most the un-sealed tail, facade included)."""
    store = NodeStore.init(str(tmp_path / "node"))
    with scoped_tx_nonces(), deterministic_entropy(5):
        dragoon = Dragoon()
        dragoon.attach_store(store)
        run_one_task(dragoon)
        key_bytes = dragoon.requester_public_key_bytes("alice")
        # the process dies here: no store.save()

        chain, meta = store.load(apply_runtime=True)
        revived = Dragoon(chain=chain)
        revived.restore_node_state(meta["extra"])
        assert "alice" in revived._requester_keys
        assert revived.requester_public_key_bytes("alice") == key_bytes
        revived.attach_store(store)
        revived.ensure_funds("alice", 100)
        outcome = revived.run_task("alice", tiny_task(), [[0] * 10, [0] * 10])
        assert outcome.contract.name == "hit:alice:1"  # serial continued


def test_simulate_state_dir_supports_later_node_use(tmp_path):
    """A state dir written by run_scenario carries the facade state,
    so a later serve-style continuation does not collide on task names."""
    store = NodeStore.init(str(tmp_path / "sim"))
    scenario = preset("poisson", seed=2, tasks=3)
    run_scenario(scenario, store=store)
    with scoped_tx_nonces():
        chain, meta = store.load(apply_runtime=True)
        dragoon = Dragoon(chain=chain)
        dragoon.restore_node_state(meta["extra"])
        assert dragoon._task_serial == 3
        assert "req-0" in dragoon._requester_keys
        dragoon.attach_store(store)
        dragoon.ensure_funds("req-0", 100)
        with deterministic_entropy(9):
            outcome = dragoon.run_task(
                "req-0", tiny_task(), [[0] * 10, [1] * 10]
            )
        assert outcome.contract.name == "hit:req-0:3"


def test_crash_mid_resume_leaves_the_directory_loadable(tmp_path, monkeypatch):
    """resume_scenario re-aligns the snapshot/WAL to the checkpoint it
    resumes from, so dying in the resumed tail — before any new
    checkpoint — leaves a directory that still loads and still resumes."""
    from repro.store.nodestore import NodeStore as StoreClass

    scenario = preset("poisson", seed=7, tasks=4)
    reference = run_scenario(scenario)
    store = NodeStore.init(str(tmp_path / "crash"))
    run_scenario(scenario, store=store, checkpoint_every=5)  # completes

    original = StoreClass.on_block
    sealed = {"count": 0}

    def dying_on_block(self, chain, block):
        original(self, chain, block)
        sealed["count"] += 1
        if sealed["count"] >= 2:
            raise KeyboardInterrupt  # the kill, mid-tail

    monkeypatch.setattr(StoreClass, "on_block", dying_on_block)
    with pytest.raises(KeyboardInterrupt):
        resume_scenario(store.state_dir)
    monkeypatch.setattr(StoreClass, "on_block", original)

    restored, meta = store.load()  # must not raise: WAL extends snapshot
    assert meta["replayed"] == 2
    report = resume_scenario(store.state_dir)  # and resuming still works
    assert report.to_json() == reference.to_json()


def test_mints_between_blocks_are_journalled(tmp_path):
    """Ledger mutations made *between* blocks (a top-up mint before a
    publish, as the resumed-serve CLI does) land in the next block's
    WAL record: crash recovery keeps them and their ledger entries."""
    store = NodeStore.init(str(tmp_path / "node"))
    with scoped_tx_nonces(), deterministic_entropy(5):
        dragoon = Dragoon()
        dragoon.attach_store(store)
        dragoon.fund("alice", 30)
        dragoon.ensure_funds("alice", 100)  # mints 70 outside any block
        dragoon.run_task("alice", tiny_task(), [[0] * 10, [1] * 10])
        live_root = state_root(dragoon.chain)
        # the process dies here: no store.save()
        restored, _meta = store.load()
    assert state_root(restored) == live_root
    mints = [e for e in restored.ledger.entries if e.memo == "top-up"]
    assert len(mints) == 1 and mints[0].amount == 70


def test_crash_between_manifest_and_wal_reset_still_loads(tmp_path, monkeypatch):
    """save() publishes the manifest before resetting the WAL; a crash
    in that window leaves records for blocks the snapshot already
    contains.  load() must skip them, not refuse the directory."""
    from repro.store.blockstore import BlockStore as WalClass

    store = NodeStore.init(str(tmp_path / "node"))
    with scoped_tx_nonces(), deterministic_entropy(3):
        dragoon = Dragoon()
        dragoon.attach_store(store)
        run_one_task(dragoon)
        live_root = state_root(dragoon.chain)
        monkeypatch.setattr(WalClass, "reset", lambda self: None)
        store.save(dragoon.chain)  # manifest lands; the WAL never resets
    restored, meta = store.load()
    assert meta["replayed"] == 0  # every stale record skipped
    assert state_root(restored) == live_root


def test_resume_refuses_a_tampered_checkpoint(tmp_path):
    scenario = preset("poisson", seed=5, tasks=4)
    store = NodeStore.init(str(tmp_path / "tamper"))
    run_scenario(scenario, store=store, checkpoint_every=2, interrupt_after=2)
    manifest = store.manifest()
    entry = manifest["checkpoints"][-1]
    path = os.path.join(store.state_dir, entry["file"])
    envelope = pickle.load(open(path, "rb"))
    envelope["payload"]["chain"].gas_by_sender = {}
    with open(path, "wb") as handle:
        pickle.dump(envelope, handle)
    with pytest.raises(StoreError):
        resume_scenario(store.state_dir)
