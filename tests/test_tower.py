"""Extension-field tower Fp2/Fp12: axioms and inversion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import FIELD_MODULUS
from repro.crypto.tower import FQ2, FQ12, fq2

coeff = st.integers(min_value=0, max_value=FIELD_MODULUS - 1)


@given(coeff, coeff, coeff, coeff)
@settings(max_examples=30)
def test_fq2_ring_axioms(a0, a1, b0, b1):
    x, y = fq2(a0, a1), fq2(b0, b1)
    assert x + y == y + x
    assert x * y == y * x
    assert x - x == FQ2.zero()
    assert x * FQ2.one() == x


def test_fq2_i_squared_is_minus_one():
    i = fq2(0, 1)
    assert i * i == FQ2.from_int(FIELD_MODULUS - 1)
    assert i * i == -FQ2.one()


@given(coeff, coeff)
@settings(max_examples=30)
def test_fq2_inverse(a0, a1):
    x = fq2(a0, a1)
    if not x:
        return
    assert x * x.inverse() == FQ2.one()
    assert x / x == FQ2.one()


def test_fq12_modulus_relation():
    """w^12 == 18 w^6 - 82 by construction."""
    w = FQ12([0, 1] + [0] * 10)
    w6 = w**6
    assert w**12 == w6 * 18 - 82


@given(st.lists(coeff, min_size=12, max_size=12))
@settings(max_examples=15)
def test_fq12_inverse(coeffs):
    x = FQ12(coeffs)
    if not x:
        return
    assert x * x.inverse() == FQ12.one()


@given(st.lists(coeff, min_size=12, max_size=12),
       st.lists(coeff, min_size=12, max_size=12))
@settings(max_examples=15)
def test_fq12_mul_commutes(a, b):
    x, y = FQ12(a), FQ12(b)
    assert x * y == y * x


def test_fqp_pow_square_and_multiply():
    x = fq2(3, 5)
    assert x**0 == FQ2.one()
    assert x**1 == x
    assert x**5 == x * x * x * x * x


def test_fqp_negative_pow():
    x = fq2(3, 5)
    assert x**-2 == (x * x).inverse()


def test_int_coercion():
    x = fq2(3, 0)
    assert x == 3
    assert x + 1 == fq2(4, 0)
    assert 2 * x == fq2(6, 0)
    assert x / 3 == FQ2.one()


def test_wrong_coefficient_count_rejected():
    with pytest.raises(ValueError):
        FQ2([1, 2, 3])
    with pytest.raises(ValueError):
        FQ12([1])


def test_cross_tower_mixing_rejected():
    with pytest.raises(TypeError):
        fq2(1, 0) + FQ12.one()


def test_zero_inverse_raises():
    with pytest.raises(ZeroDivisionError):
        FQ2.zero().inverse()


def test_hash_and_bool():
    assert not FQ2.zero()
    assert FQ2.one()
    assert len({fq2(1, 2), fq2(1, 2), fq2(2, 1)}) == 2
