"""Batch == sequential equivalence properties for every *_batch verifier.

The batching subsystem is only allowed to be a faster spelling of the
sequential verifiers: for any batch — all-valid, all-invalid, or a
single tampered proof hidden among many valid ones —

    verify_*_batch(proofs) == all(verify_*(p) for p in proofs)

(up to the 2^-128 soundness error of the random-linear-combination
fold, which no seeded loop will ever witness).  Seeded-random loops
keep the runs reproducible; failures print the seed via the assert
message.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.curve import CURVE_ORDER, G1Point, random_scalar
from repro.crypto.elgamal import keygen
from repro.crypto.poqoea import (
    prove_quality,
    verify_quality,
    verify_quality_proofs_batch,
)
from repro.crypto.schnorr import (
    SchnorrProof,
    chaum_pedersen_prove,
    chaum_pedersen_verify,
    chaum_pedersen_verify_batch,
    schnorr_prove,
    schnorr_verify,
    schnorr_verify_batch,
)
from repro.crypto.sigma import (
    run_interactive,
    verify_transcript,
    verify_transcripts_batch,
)
from repro.crypto.vpke import (
    DecryptionProof,
    prove_decryption,
    verify_decryption,
    verify_decryption_batch,
)

_G = G1Point.generator()


def _vpke_statements(pk, sk, count, rng):
    statements = []
    for _ in range(count):
        message = rng.randrange(2)
        ciphertext = pk.encrypt(message)
        claim, proof = prove_decryption(sk, ciphertext, range(2))
        statements.append((claim, ciphertext, proof))
    return statements


def _tamper_vpke(statement, rng):
    claim, ciphertext, proof = statement
    mode = rng.randrange(3)
    if mode == 0:  # lie about the plaintext
        return (1 - claim, ciphertext, proof)
    if mode == 1:  # corrupt a commitment
        return (
            claim,
            ciphertext,
            DecryptionProof(
                proof.commitment_a + _G, proof.commitment_b, proof.response
            ),
        )
    # corrupt the response
    return (
        claim,
        ciphertext,
        DecryptionProof(
            proof.commitment_a,
            proof.commitment_b,
            (proof.response + 1) % CURVE_ORDER,
        ),
    )


def _assert_vpke_equivalence(pk, statements, seed):
    sequential = all(
        verify_decryption(pk, claim, ciphertext, proof)
        for claim, ciphertext, proof in statements
    )
    batched = verify_decryption_batch(pk, statements)
    assert batched == sequential, "seed=%d" % seed


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_vpke_batch_equivalence_valid(seed):
    rng = random.Random(seed)
    pk, sk = keygen(secret=0x1000 + seed)
    statements = _vpke_statements(pk, sk, rng.randrange(1, 7), rng)
    _assert_vpke_equivalence(pk, statements, seed)


@pytest.mark.parametrize("seed", [4, 5, 6])
def test_vpke_batch_equivalence_mixed(seed):
    rng = random.Random(seed)
    pk, sk = keygen(secret=0x2000 + seed)
    statements = _vpke_statements(pk, sk, rng.randrange(2, 8), rng)
    for position in rng.sample(
        range(len(statements)), rng.randrange(1, len(statements) + 1)
    ):
        statements[position] = _tamper_vpke(statements[position], rng)
    _assert_vpke_equivalence(pk, statements, seed)


@pytest.mark.slow
def test_vpke_single_tampered_proof_in_large_valid_batch():
    """The adversarial hiding case: 1 bad proof among 23 good ones."""
    rng = random.Random(0x5EED)
    pk, sk = keygen(secret=0xF00D)
    statements = _vpke_statements(pk, sk, 24, rng)
    position = rng.randrange(len(statements))
    statements[position] = _tamper_vpke(statements[position], rng)
    assert not verify_decryption_batch(pk, statements)
    # Every *other* statement still verifies — the batch rejected the
    # whole set because of exactly that one entry.
    rest = statements[:position] + statements[position + 1 :]
    assert verify_decryption_batch(pk, rest)


@pytest.mark.parametrize("seed", [7, 8])
def test_schnorr_batch_equivalence(seed):
    rng = random.Random(seed)
    statements = []
    for _ in range(rng.randrange(1, 9)):
        secret = random_scalar()
        statements.append((_G * secret, schnorr_prove(secret)))
    if seed % 2 == 0:  # tamper half the batches
        position = rng.randrange(len(statements))
        public, proof = statements[position]
        statements[position] = (
            public,
            SchnorrProof(proof.commitment + _G, proof.response),
        )
    sequential = all(schnorr_verify(p, pr) for p, pr in statements)
    assert schnorr_verify_batch(statements) == sequential, "seed=%d" % seed


def test_schnorr_batch_respects_context():
    secret = random_scalar()
    statements = [(_G * secret, schnorr_prove(secret, context=b"ctx-a"))]
    assert schnorr_verify_batch(statements, context=b"ctx-a")
    assert not schnorr_verify_batch(statements, context=b"ctx-b")


@pytest.mark.parametrize("tamper", [False, True])
def test_chaum_pedersen_batch_equivalence(tamper):
    rng = random.Random(11 + tamper)
    statements = []
    for _ in range(rng.randrange(2, 6)):
        secret = random_scalar()
        base_v = _G * random_scalar()
        statements.append(
            (_G * secret, base_v, base_v * secret, chaum_pedersen_prove(secret, base_v))
        )
    if tamper:
        position = rng.randrange(len(statements))
        u, base_v, w, proof = statements[position]
        statements[position] = (u, base_v, w + base_v, proof)
    sequential = all(
        chaum_pedersen_verify(u, v, w, proof) for u, v, w, proof in statements
    )
    assert chaum_pedersen_verify_batch(statements) == sequential


@pytest.mark.parametrize("tamper", [False, True])
def test_sigma_transcripts_batch_equivalence(tamper, keypair):
    pk, sk = keypair
    rng = random.Random(21 + tamper)
    statements = []
    for _ in range(rng.randrange(2, 6)):
        message = rng.randrange(2)
        ciphertext = pk.encrypt(message)
        transcript = run_interactive(sk, ciphertext, message)
        statements.append((message, ciphertext, transcript))
    if tamper:
        position = rng.randrange(len(statements))
        claim, ciphertext, transcript = statements[position]
        statements[position] = (1 - claim, ciphertext, transcript)
    sequential = all(
        verify_transcript(pk, claim, ciphertext, transcript)
        for claim, ciphertext, transcript in statements
    )
    assert verify_transcripts_batch(pk, statements) == sequential


def test_empty_batches_accept():
    pk, _ = keygen(secret=0xE)
    assert verify_decryption_batch(pk, [])
    assert schnorr_verify_batch([])
    assert chaum_pedersen_verify_batch([])
    assert verify_transcripts_batch(pk, [])
    assert verify_quality_proofs_batch(pk, [], [0, 1], [0, 0]) == []


# ---------------------------------------------------------------------------
# PoQoEA quality-proof batching (the contract's evaluate-path primitive)
# ---------------------------------------------------------------------------


def _quality_statement(pk, sk, gold_indexes, gold_answers, answers):
    ciphertexts = pk.encrypt_vector(answers)
    quality, proof = prove_quality(
        sk, ciphertexts, gold_indexes, gold_answers, [0, 1]
    )
    return (ciphertexts, quality, proof)


@pytest.mark.parametrize("seed", [31, 32, 33])
def test_quality_proofs_batch_equivalence(seed):
    rng = random.Random(seed)
    pk, sk = keygen(secret=0x3000 + seed)
    gold_indexes = [0, 2, 4]
    gold_answers = [0, 0, 0]
    statements = []
    for _ in range(rng.randrange(1, 5)):
        answers = [rng.randrange(2) for _ in range(8)]
        statements.append(
            _quality_statement(pk, sk, gold_indexes, gold_answers, answers)
        )
    # Tamper a random subset: understate the claimed quality, which
    # makes the mismatch count come up short (structural failure), or
    # corrupt a VPKE proof (cryptographic failure).
    for position in range(len(statements)):
        if rng.random() < 0.4:
            ciphertexts, quality, proof = statements[position]
            if proof.entries and rng.random() < 0.5:
                entry = proof.entries[0]
                bad_entry = type(entry)(
                    entry.index,
                    entry.answer,
                    DecryptionProof(
                        entry.proof.commitment_a + _G,
                        entry.proof.commitment_b,
                        entry.proof.response,
                    ),
                )
                proof = type(proof)((bad_entry,) + proof.entries[1:])
                statements[position] = (ciphertexts, quality, proof)
            else:
                statements[position] = (ciphertexts, quality - 1, proof)

    sequential = [
        verify_quality(pk, cts, quality, proof, gold_indexes, gold_answers)
        for cts, quality, proof in statements
    ]
    batched = verify_quality_proofs_batch(
        pk, statements, gold_indexes, gold_answers
    )
    assert batched == sequential, "seed=%d" % seed


def test_quality_proofs_batch_localizes_single_bad_worker():
    """One worker's tampered proof must not poison the others' verdicts."""
    pk, sk = keygen(secret=0x51)
    gold_indexes = [0, 1, 2]
    gold_answers = [0, 0, 0]
    statements = [
        _quality_statement(pk, sk, gold_indexes, gold_answers, [1] * 6)
        for _ in range(4)
    ]
    ciphertexts, quality, proof = statements[2]
    entry = proof.entries[0]
    bad_entry = type(entry)(
        entry.index,
        entry.answer,
        DecryptionProof(
            entry.proof.commitment_a + _G,
            entry.proof.commitment_b,
            entry.proof.response,
        ),
    )
    statements[2] = (ciphertexts, quality, type(proof)((bad_entry,) + proof.entries[1:]))
    assert verify_quality_proofs_batch(
        pk, statements, gold_indexes, gold_answers
    ) == [True, True, False, True]


def test_quality_proofs_batch_rejects_duplicate_golds():
    pk, sk = keygen(secret=0x52)
    statement = _quality_statement(pk, sk, [0, 1], [0, 0], [1, 1, 0])
    assert verify_quality_proofs_batch(pk, [statement], [0, 0], [0, 0]) == [False]
