"""Golden-vector regression tests for the wire formats.

The encodings in ``tests/vectors/serialization_vectors.json`` were
generated once from the seed implementation and are *committed*: these
tests recompute each encoding from its description and compare against
the pinned bytes, so an optimization anywhere below the serialization
layer (windowed precomputation, MSM, Jacobian tricks) can never silently
change what goes on the wire.

If a test here fails, the wire format changed.  That is a protocol
break, not a refactor — never regenerate the vectors to make it pass
unless the format change is intentional and versioned.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.crypto.curve import G1Point
from repro.crypto.elgamal import Ciphertext, keygen
from repro.crypto.keccak import keccak256
from repro.crypto.poqoea import MismatchEntry, QualityProof
from repro.crypto.vpke import DecryptionProof
from repro.utils.serialization import (
    bytes_to_int,
    decode_ciphertext,
    decode_point,
    encode_point,
    int_to_bytes,
)

VECTORS = json.loads(
    (Path(__file__).parent / "vectors" / "serialization_vectors.json").read_text()
)

_G = G1Point.generator()

_POINTS = {
    "generator": lambda: _G,
    "2G": lambda: _G * 2,
    "5G": lambda: _G * 5,
    "123456789G": lambda: _G * 123456789,
    "infinity": G1Point.infinity,
}


@pytest.mark.parametrize(
    "vector", VECTORS["points"], ids=[v["label"] for v in VECTORS["points"]]
)
def test_point_encodings_are_pinned(vector):
    point = _POINTS[vector["label"]]()
    assert point.to_bytes().hex() == vector["encoding"]
    # Round trip through both the object and the raw-affine codecs.
    assert G1Point.from_bytes(bytes.fromhex(vector["encoding"])) == point
    assert decode_point(encode_point(point.affine)) == point.affine


@pytest.mark.parametrize("vector", VECTORS["ciphertexts"])
def test_ciphertext_encodings_are_pinned(vector):
    pk, _ = keygen(secret=int(vector["secret"], 16))
    ciphertext = pk.encrypt(vector["message"], randomness=int(vector["randomness"]))
    encoded = ciphertext.to_bytes()
    assert encoded.hex() == vector["encoding"]
    assert Ciphertext.from_bytes(encoded) == ciphertext
    c1, c2 = decode_ciphertext(encoded)
    assert (c1, c2) == (ciphertext.c1.affine, ciphertext.c2.affine)


def test_vpke_proof_encoding_is_pinned():
    (vector,) = VECTORS["vpke_proofs"]
    proof = DecryptionProof(_G * 11, _G * 22, 333)
    encoded = proof.to_bytes()
    assert encoded.hex() == vector["encoding"]
    assert len(encoded) == 160
    assert DecryptionProof.from_bytes(encoded) == proof


def test_quality_proof_encoding_is_pinned():
    (vector,) = VECTORS["quality_proofs"]
    proof = QualityProof(
        (
            MismatchEntry(3, 1, DecryptionProof(_G * 4, _G * 5, 6)),
            MismatchEntry(7, _G * 8, DecryptionProof(_G * 9, _G * 10, 11)),
        )
    )
    assert proof.to_bytes().hex() == vector["encoding"]


@pytest.mark.parametrize("vector", VECTORS["ints"])
def test_integer_encodings_are_pinned(vector):
    value = int(vector["value"])
    encoded = int_to_bytes(value, vector["length"])
    assert encoded.hex() == vector["encoding"]
    assert bytes_to_int(encoded) == value


@pytest.mark.parametrize(
    "vector", VECTORS["keccak"], ids=[v["preimage"] or "empty" for v in VECTORS["keccak"]]
)
def test_keccak_digests_are_pinned(vector):
    assert keccak256(vector["preimage"].encode()).hex() == vector["digest"]
