"""Homomorphic tallies, majority voting, agreement statistics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import (
    accuracy_against_truth,
    binary_consensus_from_tally,
    homomorphic_tally,
    majority_vote,
    pairwise_agreement,
)
from repro.crypto.elgamal import keygen
from repro.errors import ProtocolError


@pytest.fixture(scope="module")
def keys():
    return keygen(secret=0xA66)


def test_homomorphic_tally_counts_ones(keys):
    pk, sk = keys
    submissions = [
        pk.encrypt_vector([1, 0, 1]),
        pk.encrypt_vector([1, 1, 0]),
        pk.encrypt_vector([1, 0, 0]),
    ]
    assert homomorphic_tally(sk, submissions) == [3, 1, 1]


def test_homomorphic_tally_empty(keys):
    _, sk = keys
    assert homomorphic_tally(sk, []) == []


def test_homomorphic_tally_mismatched_lengths(keys):
    pk, sk = keys
    with pytest.raises(ProtocolError):
        homomorphic_tally(sk, [pk.encrypt_vector([1]), pk.encrypt_vector([1, 0])])


@given(st.lists(st.lists(st.integers(0, 1), min_size=3, max_size=3),
                min_size=1, max_size=4))
@settings(max_examples=6, deadline=None)
def test_homomorphic_tally_matches_plaintext_sum(answer_sets):
    pk, sk = keygen(secret=0xA67)
    submissions = [pk.encrypt_vector(a) for a in answer_sets]
    expected = [sum(col) for col in zip(*answer_sets)]
    assert homomorphic_tally(sk, submissions) == expected


def test_binary_consensus_from_tally():
    result = binary_consensus_from_tally([3, 1, 2], num_workers=4)
    assert result.labels == (1, 0, 1)  # tie at position 2 -> tie_break=1
    assert result.support == (3, 3, 2)
    assert result.num_workers == 4


def test_binary_consensus_tie_break_zero():
    result = binary_consensus_from_tally([2], num_workers=4, tie_break=0)
    assert result.labels == (0,)


def test_majority_vote_multioption():
    result = majority_vote([[0, 2], [1, 2], [1, 2]])
    assert result.labels == (1, 2)
    assert result.support == (2, 3)


def test_majority_vote_tie_resolution():
    # 0 and 1 tie; smallest wins by default.
    assert majority_vote([[0], [1]]).labels == (0,)
    assert majority_vote([[0], [1]], tie_break=1).labels == (1,)
    # tie_break not among tied options falls back to smallest.
    assert majority_vote([[0], [1]], tie_break=7).labels == (0,)


def test_majority_vote_requires_submissions():
    with pytest.raises(ProtocolError):
        majority_vote([])


def test_majority_vote_length_mismatch():
    with pytest.raises(ProtocolError):
        majority_vote([[1, 0], [1]])


def test_agreement_rate():
    result = majority_vote([[1, 1], [1, 0]])
    assert result.agreement_rate() == pytest.approx((2 + 1) / (2 * 2))


def test_pairwise_agreement_bounds():
    assert pairwise_agreement([[1, 0, 1]]) == 1.0
    assert pairwise_agreement([[1, 1], [1, 1]]) == 1.0
    assert pairwise_agreement([[1, 1], [0, 0]]) == 0.0
    mixed = pairwise_agreement([[1, 1], [1, 0], [0, 0]])
    assert 0.0 < mixed < 1.0


def test_accuracy_against_truth():
    assert accuracy_against_truth([1, 0, 1], [1, 0, 0]) == pytest.approx(2 / 3)
    assert accuracy_against_truth([], []) == 1.0
    with pytest.raises(ProtocolError):
        accuracy_against_truth([1], [1, 0])


def test_end_to_end_consensus_recovers_truth(keys):
    """Five noisy binary annotators; consensus beats each individual."""
    import random

    pk, sk = keys
    rng = random.Random(5)
    truth = [rng.randint(0, 1) for _ in range(30)]
    answer_sets = []
    for _ in range(5):
        answer_sets.append(
            [t if rng.random() < 0.8 else 1 - t for t in truth]
        )
    submissions = [pk.encrypt_vector(a) for a in answer_sets]
    tallies = homomorphic_tally(sk, submissions)
    consensus = binary_consensus_from_tally(tallies, 5)
    consensus_accuracy = accuracy_against_truth(list(consensus.labels), truth)
    mean_individual = sum(
        accuracy_against_truth(a, truth) for a in answer_sets
    ) / 5
    assert consensus_accuracy >= mean_individual
