"""The HIT task model: validation, workloads, serialization."""

import pytest

from repro.core.task import (
    HITTask,
    TaskParameters,
    make_imagenet_task,
    make_street_parking_task,
    parse_golden_blob,
    sample_worker_answers,
)
from repro.errors import AnswerError, TaskSpecError


def _params(**overrides):
    base = dict(
        num_questions=10,
        budget=100,
        num_workers=2,
        answer_range=(0, 1),
        quality_threshold=2,
        num_golds=3,
    )
    base.update(overrides)
    return TaskParameters(**base)


def test_valid_parameters():
    p = _params()
    assert p.reward_per_worker == 50


@pytest.mark.parametrize(
    "overrides",
    [
        dict(num_questions=0),
        dict(num_workers=0),
        dict(budget=1),
        dict(budget=101),  # not divisible by K
        dict(answer_range=(0,)),
        dict(answer_range=(0, 0)),
        dict(answer_range=(-1, 1)),
        dict(num_golds=0),
        dict(num_golds=11),
        dict(quality_threshold=4),  # > |G|
        dict(quality_threshold=-1),
    ],
)
def test_invalid_parameters(overrides):
    with pytest.raises(TaskSpecError):
        _params(**overrides)


def test_parameters_json_roundtrip():
    p = _params()
    assert TaskParameters.from_json(p.to_json()) == p


def _task(**param_overrides):
    p = _params(**param_overrides)
    return HITTask(
        p,
        ["q%d" % i for i in range(p.num_questions)],
        [0, 1, 2][: p.num_golds],
        [0] * p.num_golds,
        [0] * p.num_questions,
    )


def test_valid_task():
    task = _task()
    assert task.quality_of([0] * 10) == 3


@pytest.mark.parametrize(
    "mutation",
    [
        lambda t: HITTask(t.parameters, t.questions[:-1], t.gold_indexes,
                          t.gold_answers, t.ground_truth),
        lambda t: HITTask(t.parameters, t.questions, [0, 0, 1],
                          t.gold_answers, t.ground_truth),
        lambda t: HITTask(t.parameters, t.questions, [0, 1, 99],
                          t.gold_answers, t.ground_truth),
        lambda t: HITTask(t.parameters, t.questions, t.gold_indexes,
                          [0, 0], t.ground_truth),
        lambda t: HITTask(t.parameters, t.questions, t.gold_indexes,
                          [0, 0, 9], t.ground_truth),
        lambda t: HITTask(t.parameters, t.questions, t.gold_indexes,
                          t.gold_answers, [0] * 9),
        lambda t: HITTask(t.parameters, t.questions, t.gold_indexes,
                          [1, 0, 0], t.ground_truth),  # disagrees with truth
    ],
)
def test_invalid_tasks(mutation):
    task = _task()
    with pytest.raises(TaskSpecError):
        mutation(task)


def test_validate_answers():
    task = _task()
    task.validate_answers([0] * 10)
    with pytest.raises(AnswerError):
        task.validate_answers([0] * 9)
    with pytest.raises(AnswerError):
        task.validate_answers([0] * 9 + [7])


def test_golden_blob_roundtrip():
    task = _task()
    indexes, answers = parse_golden_blob(task.golden_blob())
    assert indexes == task.gold_indexes
    assert answers == task.gold_answers


def test_questions_blob_contains_questions():
    import json

    task = _task()
    data = json.loads(task.questions_blob().decode())
    assert data["questions"] == task.questions
    assert data["parameters"]["num_questions"] == 10


def test_imagenet_task_matches_paper_policy():
    """106 binary questions, 6 golds, 4 workers, reject below 4."""
    task = make_imagenet_task()
    p = task.parameters
    assert p.num_questions == 106
    assert p.num_golds == 6
    assert p.num_workers == 4
    assert p.quality_threshold == 4
    assert p.answer_range == (0, 1)
    assert len(task.gold_indexes) == 6
    assert task.ground_truth is not None


def test_imagenet_task_deterministic_by_seed():
    assert make_imagenet_task(seed=1).gold_indexes == make_imagenet_task(seed=1).gold_indexes
    assert make_imagenet_task(seed=1).gold_indexes != make_imagenet_task(seed=2).gold_indexes


def test_street_parking_task():
    task = make_street_parking_task()
    assert task.parameters.answer_range == (0, 1, 2)
    assert task.parameters.num_workers == 3


def test_sample_worker_answers_full_accuracy():
    task = make_imagenet_task()
    answers = sample_worker_answers(task, 1.0, seed=0)
    assert answers == task.ground_truth
    assert task.quality_of(answers) == 6


def test_sample_worker_answers_zero_accuracy():
    task = make_imagenet_task()
    answers = sample_worker_answers(task, 0.0, seed=0)
    assert all(a != t for a, t in zip(answers, task.ground_truth))
    assert task.quality_of(answers) == 0


def test_sample_worker_answers_validates_probability():
    task = make_imagenet_task()
    with pytest.raises(ValueError):
        sample_worker_answers(task, 1.5)


def test_sample_worker_answers_needs_ground_truth():
    task = _task()
    no_truth = HITTask(
        task.parameters, task.questions, task.gold_indexes, task.gold_answers
    )
    with pytest.raises(TaskSpecError):
        sample_worker_answers(no_truth, 0.5)


def test_sampled_answers_stay_in_range():
    task = make_street_parking_task()
    answers = sample_worker_answers(task, 0.5, seed=3)
    task.validate_answers(answers)
