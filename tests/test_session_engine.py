"""The event-driven session engine: FSMs, staggering, stragglers, dropouts.

Complements the lock-step suites (which now run *through* the engine via
the ``run_hit`` wrapper) by exercising what the engine newly enables:
sessions at arbitrary block offsets, worker-side adversaries against the
Fig. 4 deadlines, unfilled-task cancellation, and the per-block trace.
"""

from __future__ import annotations

import pytest

from repro.core.protocol import run_hit
from repro.core.requester import RequesterClient
from repro.core.session import (
    SESSION_CANCELLED,
    SESSION_COMMIT,
    SESSION_DONE,
    SESSION_EVALUATE,
    SESSION_REVEAL,
    DropScheduler,
    SessionConfig,
    SessionEngine,
    StragglerScheduler,
)
from repro.core.worker import WorkerClient
from repro.dragoon import Dragoon, TaskArrival
from repro.errors import ProtocolError
from tests.helpers import small_task

GOOD = [0] * 10
BAD = [1] * 10


def _single_session(config=None, answers=(GOOD, BAD), task=None):
    engine = SessionEngine()
    requester = RequesterClient(
        "requester", task or small_task(), engine.chain, engine.swarm
    )
    session = engine.publish_session(requester, config=config)
    for index, sheet in enumerate(answers):
        session.add_worker(
            WorkerClient(
                "worker-%d" % index, engine.chain, engine.swarm, answers=sheet
            )
        )
    return engine, session


# ---------------------------------------------------------------------------
# The lock-step equivalence (the refactor changed nothing observable)
# ---------------------------------------------------------------------------


def test_engine_reproduces_lock_step_run_exactly():
    engine, session = _single_session()
    engine.run()
    baseline = run_hit(small_task(), [GOOD, BAD])
    outcome = session.outcome()
    assert outcome.payments() == baseline.payments()
    assert outcome.verdicts() == baseline.verdicts()
    assert engine.chain.height == baseline.chain.height == 5
    # Identical per-block transaction schedule.
    for ours, theirs in zip(engine.chain.blocks, baseline.chain.blocks):
        assert [
            (t.sender.label, t.method) for t in ours.transactions
        ] == [(t.sender.label, t.method) for t in theirs.transactions]
    # ... and the same gas ledger shape (exact gas wobbles by a few
    # calldata bytes run-to-run: ElGamal randomness changes the
    # zero-byte count EIP-2028 prices).
    for attribute in ("commits", "reveals", "rejections"):
        assert set(getattr(outcome.gas, attribute)) == set(
            getattr(baseline.gas, attribute)
        )
    assert outcome.gas.total == pytest.approx(baseline.gas.total, rel=1e-3)


def test_session_phase_history_follows_fig4():
    engine, session = _single_session()
    engine.run()
    phases = [phase for _, phase in session.history]
    assert phases == ["commit", "reveal", "evaluate", "finalize", "done"]
    assert session.phase == SESSION_DONE


def test_run_raises_when_sessions_cannot_settle():
    task = small_task(num_workers=2)
    engine, session = _single_session(answers=[GOOD], task=task)
    # Only one of two slots ever commits; no cancel_after configured.
    with pytest.raises(ProtocolError):
        engine.run(max_blocks=8)
    assert session.phase == SESSION_COMMIT


def test_run_hit_returns_unfinished_outcome_for_unfillable_task():
    """Like the scripted driver of old: a misbehaving worker_cls that
    never lands its commit gets its five blocks, then the outcome —
    nobody paid, nothing finalized — not an exception."""

    class SilentWorker(WorkerClient):
        def send_commit(self):
            return None  # never reaches the mempool

    outcome = run_hit(small_task(), [GOOD, GOOD], worker_cls=SilentWorker)
    assert outcome.chain.height == 5
    assert outcome.payments() == {"worker-0": 0, "worker-1": 0}
    assert not outcome.contract.is_finalized()


# ---------------------------------------------------------------------------
# Worker-side adversaries against the Fig. 4 deadlines
# ---------------------------------------------------------------------------


def test_dropout_after_commit_forfeits_payment():
    engine = SessionEngine()
    requester = RequesterClient(
        "requester", small_task(), engine.chain, engine.swarm
    )
    session = engine.publish_session(requester)
    honest = session.add_worker(
        WorkerClient("honest", engine.chain, engine.swarm, answers=GOOD)
    )
    ghost = session.add_worker(
        WorkerClient("ghost", engine.chain, engine.swarm, answers=GOOD),
        policy=DropScheduler("reveal"),
    )
    engine.run()
    outcome = session.outcome()
    assert outcome.payment_of(honest) == 50
    assert outcome.payment_of(ghost) == 0
    assert outcome.verdicts()["ghost"] is None  # never revealed, never judged
    assert ("ghost", "reveal") in session.dropped
    # The dropout's B/K share is refunded to the requester at finalize.
    assert engine.chain.ledger.balance_of(requester.address) == 50


def test_late_reveal_is_rejected_and_refunded():
    engine = SessionEngine()
    requester = RequesterClient(
        "requester", small_task(), engine.chain, engine.swarm
    )
    session = engine.publish_session(requester)
    punctual = session.add_worker(
        WorkerClient("punctual", engine.chain, engine.swarm, answers=GOOD)
    )
    tardy = session.add_worker(
        WorkerClient("tardy", engine.chain, engine.swarm, answers=GOOD),
        policy=StragglerScheduler(reveal=1),
    )
    engine.run()
    outcome = session.outcome()
    assert outcome.payment_of(punctual) == 50
    assert outcome.payment_of(tardy) == 0
    late = [
        receipt
        for receipt in outcome.receipts
        if receipt.transaction.method == "reveal" and not receipt.succeeded
    ]
    assert len(late) == 1
    assert "phase" in late[0].revert_reason
    # The burned gas shows up as a dynamic operation in the report.
    assert outcome.gas.extras == {"late-reveal:tardy": late[0].gas_used}
    assert outcome.gas.total > 0
    assert engine.chain.ledger.balance_of(requester.address) == 50


def test_late_commit_stalls_the_reveal_window_not_the_task():
    """A straggling commit just opens the reveal window later: the Fig. 4
    deadline chain is relative to the last commit, not to publication."""
    engine = SessionEngine()
    requester = RequesterClient(
        "requester", small_task(), engine.chain, engine.swarm
    )
    session = engine.publish_session(requester)
    session.add_worker(
        WorkerClient("early", engine.chain, engine.swarm, answers=GOOD)
    )
    session.add_worker(
        WorkerClient("late", engine.chain, engine.swarm, answers=GOOD),
        policy=StragglerScheduler(commit=2),
    )
    blocks = engine.run()
    outcome = session.outcome()
    assert outcome.payments() == {"early": 50, "late": 50}
    assert blocks == 4 + 2  # two extra blocks waiting for the late commit


def test_unfilled_task_cancels_and_refunds_the_budget():
    engine = SessionEngine()
    requester = RequesterClient(
        "requester", small_task(), engine.chain, engine.swarm
    )
    session = engine.publish_session(
        requester, config=SessionConfig(cancel_after=3)
    )
    session.add_worker(
        WorkerClient("only", engine.chain, engine.swarm, answers=GOOD)
    )  # the second slot never arrives
    engine.run(max_blocks=16)
    assert session.phase == SESSION_CANCELLED
    assert engine.chain.ledger.balance_of(requester.address) == 100
    gas = session.outcome().gas
    assert list(gas.extras) == ["cancel:requester"]
    assert gas.extras["cancel:requester"] > 0


def test_reverted_cancel_does_not_mislabel_a_settled_task():
    """A straggling commit fills the task in the very block that carries
    the cancel: the cancel reverts, the task runs to completion, and the
    session reports DONE (the terminal phase follows the event that
    actually arrived, not the cancel attempt)."""
    dragoon = Dragoon()
    (outcome,) = dragoon.serve(
        [
            TaskArrival(
                0, "req", small_task(), [GOOD, BAD],
                worker_policies={1: StragglerScheduler(commit=2)},
                cancel_after=2,
            )
        ]
    )
    session = dragoon.engine.sessions[0]
    assert session.phase == SESSION_DONE
    assert outcome.contract.is_finalized()
    assert sorted(outcome.payments().values()) == [0, 50]
    cancels = [
        receipt
        for receipt in outcome.receipts
        if receipt.transaction.method == "cancel"
    ]
    assert len(cancels) == 1 and not cancels[0].succeeded


def test_serve_honors_slow_cancel_timeouts():
    """A cancel_after beyond the default settlement slack still fires
    instead of tripping the service loop's block bound."""
    dragoon = Dragoon()
    (outcome,) = dragoon.serve(
        [
            TaskArrival(
                0, "req", small_task(), [GOOD, GOOD],
                worker_policies={
                    0: DropScheduler("commit"),
                    1: DropScheduler("commit"),
                },
                cancel_after=70,
            )
        ]
    )
    assert dragoon.engine.sessions[0].phase == SESSION_CANCELLED
    assert dragoon.chain.ledger.balance_of(outcome.requester.address) == 100


# ---------------------------------------------------------------------------
# Concurrency: staggered arrivals sharing one chain
# ---------------------------------------------------------------------------


def test_two_sessions_at_different_offsets_interleave():
    engine = SessionEngine()
    first_requester = RequesterClient(
        "alice", small_task(), engine.chain, engine.swarm
    )
    first = engine.publish_session(first_requester)
    for index, sheet in enumerate([GOOD, BAD]):
        first.add_worker(
            WorkerClient("a%d" % index, engine.chain, engine.swarm, answers=sheet)
        )
    engine.step()  # first task's commits land; second task arrives now
    second_requester = RequesterClient(
        "bob", small_task(), engine.chain, engine.swarm
    )
    second = engine.publish_session(second_requester)
    for index, sheet in enumerate([GOOD, GOOD]):
        second.add_worker(
            WorkerClient("b%d" % index, engine.chain, engine.swarm, answers=sheet)
        )
    engine.run()
    assert first.outcome().payments() == {"a0": 50, "a1": 0}
    assert second.outcome().payments() == {"b0": 50, "b1": 50}
    # While the second task commits, the first is already revealing.
    mid_phases = [
        trace.phases for trace in engine.trace if len(trace.phases) == 2
    ]
    assert any(
        phases[first.contract_name] != phases[second.contract_name]
        for phases in mid_phases
    )


def test_eight_staggered_sessions_with_dropout_and_late_reveal():
    """The acceptance scenario: >= 8 concurrent sessions, staggered
    starts, one dropout, one late reveal, all settled to correct Fig. 4
    verdicts in far fewer blocks than lock-step sequential execution."""
    dragoon = Dragoon()
    arrivals = []
    for index in range(8):
        policies = {}
        if index == 3:
            policies = {1: DropScheduler("reveal")}  # the dropout
        elif index == 5:
            policies = {1: StragglerScheduler(reveal=1)}  # the late reveal
        arrivals.append(
            TaskArrival(
                at_block=index // 2,  # two arrivals per block, four waves
                requester_label="req-%d" % index,
                task=small_task(),
                worker_answers=[GOOD, GOOD if index in (3, 5) else BAD],
                worker_policies=policies,
            )
        )
    outcomes = dragoon.serve(arrivals)
    assert len(outcomes) == 8
    for index, outcome in enumerate(outcomes):
        first, second = outcome.workers
        assert outcome.payment_of(first) == 50, "task %d" % index
        assert outcome.payment_of(second) == 0, "task %d" % index
        verdict = outcome.contract.verdict_of(second.address)
        if index in (3, 5):
            # Dropped or late reveal: never adjudicated, simply unpaid;
            # the slot's share went back to the requester.
            assert verdict is None
            assert (
                dragoon.chain.ledger.balance_of(outcome.requester.address) == 50
            )
        else:
            assert verdict == "rejected-quality"
        assert outcome.contract.is_finalized()
    # Eight tasks in far fewer blocks than 8 lock-step runs (5 each).
    assert dragoon.chain.height < 8 * 5
    # Everyone's session reached DONE through the engine.
    assert dragoon.engine.all_done


def test_staggered_batch_evaluations_share_blocks():
    """Same-phase sessions land their evaluate_batch txs in one block."""
    dragoon = Dragoon()
    arrivals = [
        TaskArrival(0, "r%d" % index, small_task(), [GOOD, BAD])
        for index in range(3)
    ]
    dragoon.serve(arrivals)
    evaluate_blocks = {
        receipt.block_number
        for block in dragoon.chain.blocks
        for receipt in block.receipts
        if receipt.transaction.method == "evaluate_batch"
    }
    assert len(evaluate_blocks) == 1


def test_engine_trace_records_events_and_phases():
    engine, session = _single_session()
    engine.run()
    assert [trace.block_number for trace in engine.trace] == [1, 2, 3, 4]
    event_names = [
        name for trace in engine.trace for _, name in trace.events
    ]
    assert "all_committed" in event_names
    assert "finalized" in event_names
    assert engine.trace[0].phases[session.contract_name] == SESSION_REVEAL
    assert engine.trace[-1].phases[session.contract_name] == SESSION_DONE


def test_mid_phase_arrival_keeps_earlier_session_untouched():
    """A task arriving while another evaluates changes nothing for it."""
    baseline = run_hit(small_task(), [GOOD, BAD])
    dragoon = Dragoon()
    outcomes = dragoon.serve(
        [
            TaskArrival(0, "first", small_task(), [GOOD, BAD],
                        evaluation="sequential"),
            TaskArrival(3, "second", small_task(), [GOOD, GOOD]),
        ]
    )
    assert sorted(outcomes[0].payments().values()) == sorted(
        baseline.payments().values()
    )
    assert outcomes[0].gas.total == pytest.approx(baseline.gas.total, rel=1e-2)
    assert all(paid == 50 for paid in outcomes[1].payments().values())


def test_silent_requester_session_defaults_to_paying_everyone():
    engine, session = _single_session(
        config=SessionConfig(evaluation="none"), answers=(BAD, BAD)
    )
    engine.run()
    outcome = session.outcome()
    assert outcome.payments() == {"worker-0": 50, "worker-1": 50}
    assert engine.chain.ledger.balance_of(session.requester.address) == 0
