"""The chain simulator: deployment, execution, revert, events, gas."""

import pytest

from repro.chain.chain import Chain
from repro.chain.contract import CallContext, Contract
from repro.chain.gas import TX_BASE, deployment_cost
from repro.errors import ChainError, ContractError


class Counter(Contract):
    """A tiny test contract: counts, stores, pays, and can revert."""

    code_size = 1000

    def on_deploy(self, ctx: CallContext) -> None:
        self._sstore(ctx, "count", 0)

    def increment(self, ctx: CallContext) -> None:
        current = self._sload(ctx, "count")
        self._sstore(ctx, "count", current + 1)
        self.emit(ctx, "incremented", payload={"count": current + 1})

    def boom(self, ctx: CallContext) -> None:
        self._sstore(ctx, "count", 999)
        ctx.require(False, "always reverts")

    def take_budget(self, ctx: CallContext) -> None:
        ok = ctx.ledger.freeze(self.address, ctx.sender, 50)
        ctx.require(ok, "no funds")

    def pay_then_fail(self, ctx: CallContext) -> None:
        ctx.ledger.pay(self.address, ctx.sender, 10)
        ctx.require(False, "revert after pay")

    def seed_nested(self, ctx: CallContext) -> None:
        self._sstore(ctx, "members", ["alice"])
        self._sstore(ctx, "scores", {"alice": {"rounds": [1, 2]}})

    def mutate_nested_then_fail(self, ctx: CallContext) -> None:
        # In-place mutation of *nested* mutables, then a revert: the
        # regression the deep storage snapshot exists to roll back.
        self.storage["members"].append("mallory")
        self.storage["scores"]["alice"]["rounds"].append(99)
        self.storage["scores"]["mallory"] = {"rounds": [0]}
        ctx.require(False, "mutated in place, then reverted")


@pytest.fixture
def chain():
    chain = Chain()
    chain.register_account("deployer", 100)
    chain.register_account("user", 100)
    return chain


def _deploy(chain) -> Counter:
    contract = Counter("counter")
    receipt = chain.deploy(contract, chain.registry.lookup("deployer"))
    assert receipt.succeeded
    return contract


def test_deploy_charges_code_deposit(chain):
    contract = Counter("counter")
    receipt = chain.deploy(contract, chain.registry.lookup("deployer"))
    assert receipt.gas_used >= TX_BASE + deployment_cost(1000)
    assert chain.height == 1


def test_duplicate_contract_name_rejected(chain):
    _deploy(chain)
    with pytest.raises(ChainError):
        chain.deploy(Counter("counter"), chain.registry.lookup("deployer"))


def test_send_and_mine(chain):
    contract = _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "increment")
    chain.send(user, "counter", "increment")
    block = chain.mine_block()
    assert len(block.transactions) == 2
    assert all(r.succeeded for r in block.receipts)
    assert contract.storage["count"] == 2


def test_send_to_unknown_contract(chain):
    with pytest.raises(ChainError):
        chain.send(chain.registry.lookup("user"), "ghost", "noop")


def test_revert_rolls_back_storage(chain):
    contract = _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "boom")
    block = chain.mine_block()
    receipt = block.receipts[0]
    assert not receipt.succeeded
    assert "always reverts" in receipt.revert_reason
    assert contract.storage["count"] == 0  # the 999 write rolled back


def test_revert_rolls_back_nested_in_place_mutation(chain):
    """A handler that mutates nested mutables in place and then raises
    must leave no trace: the pre-call snapshot has to be deep, because
    ``dict(storage)`` shares the nested lists/dicts it claims to save."""
    contract = _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "seed_nested")
    chain.mine_block()
    before_members = list(contract.storage["members"])
    before_rounds = list(contract.storage["scores"]["alice"]["rounds"])
    chain.send(user, "counter", "mutate_nested_then_fail")
    block = chain.mine_block()
    assert not block.receipts[0].succeeded
    assert contract.storage["members"] == before_members
    assert contract.storage["scores"]["alice"]["rounds"] == before_rounds
    assert "mallory" not in contract.storage["scores"]


def test_successful_nested_mutation_sticks(chain):
    """The deep snapshot only guards *reverted* calls — a successful
    in-place mutation must still land (and must not alias the snapshot)."""
    contract = _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "seed_nested")
    chain.mine_block()

    def grow(self, ctx):
        self.storage["members"].append("bob")

    Counter.grow = grow
    try:
        chain.send(user, "counter", "grow")
        block = chain.mine_block()
        assert block.receipts[0].succeeded
        assert contract.storage["members"] == ["alice", "bob"]
    finally:
        del Counter.grow


def test_revert_rolls_back_ledger(chain):
    contract = _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "take_budget")
    chain.mine_block()
    assert chain.ledger.escrow_of(contract.address) == 50
    chain.send(user, "counter", "pay_then_fail")
    chain.mine_block()
    # The pay inside the reverted call must not stick.
    assert chain.ledger.escrow_of(contract.address) == 50
    assert chain.ledger.balance_of(user) == 50


def test_revert_suppresses_events(chain):
    _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "boom")
    chain.mine_block()
    assert chain.events_named("incremented") == []


def test_events_recorded_on_success(chain):
    _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "increment")
    chain.mine_block()
    events = chain.events_named("incremented", "counter")
    assert len(events) == 1
    assert events[0].payload == {"count": 1}


def test_unknown_method_reverts(chain):
    _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "not_a_method")
    block = chain.mine_block()
    assert not block.receipts[0].succeeded


def test_private_method_not_callable(chain):
    _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "_sstore")
    block = chain.mine_block()
    assert not block.receipts[0].succeeded


def test_gas_accounting_per_sender(chain):
    _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "increment")
    chain.mine_block()
    assert chain.gas_by_sender[user] > TX_BASE
    assert chain.total_gas > 0


def test_clock_advances_per_block(chain):
    _deploy(chain)
    assert chain.clock.period == 0
    chain.mine_block()
    chain.mine_block()
    assert chain.clock.period == 2


def test_block_linkage(chain):
    _deploy(chain)
    b1 = chain.mine_block()
    b2 = chain.mine_block()
    assert b2.parent_hash == b1.block_hash()
    assert b1.number == 1 and b2.number == 2


def test_mine_until_idle(chain):
    _deploy(chain)
    user = chain.registry.lookup("user")
    chain.send(user, "counter", "increment")
    mined = chain.mine_until_idle()
    assert len(mined) == 1
    assert chain.mine_until_idle() == []


def test_register_account_idempotent(chain):
    a = chain.register_account("user", 5)
    assert chain.ledger.balance_of(a) == 100  # existing balance kept
