"""keccak-256 against the well-known Ethereum vectors and edge cases."""

import pytest

from repro.crypto.keccak import keccak256, keccak256_hex, keccak_to_int

KNOWN_VECTORS = [
    (b"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"),
    (b"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"),
    (b"hello", "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"),
    (
        b"The quick brown fox jumps over the lazy dog",
        "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
    ),
]


@pytest.mark.parametrize("message,expected", KNOWN_VECTORS)
def test_known_vectors(message, expected):
    assert keccak256(message).hex() == expected


def test_output_is_32_bytes():
    assert len(keccak256(b"x")) == 32


def test_hex_helper_matches_bytes():
    assert keccak256_hex(b"abc") == keccak256(b"abc").hex()


def test_int_helper_is_big_endian():
    assert keccak_to_int(b"abc") == int.from_bytes(keccak256(b"abc"), "big")


def test_differs_from_sha3_256():
    """Keccak padding (0x01) differs from NIST SHA3 padding (0x06)."""
    import hashlib

    assert keccak256(b"") != hashlib.sha3_256(b"").digest()


@pytest.mark.parametrize("length", [0, 1, 135, 136, 137, 271, 272, 273, 1000])
def test_rate_boundary_lengths(length):
    """Messages straddling the 136-byte rate must hash deterministically
    and distinctly from their neighbours."""
    base = bytes(range(256)) * 4
    digest = keccak256(base[:length])
    assert digest == keccak256(base[:length])
    if length:
        assert digest != keccak256(base[: length - 1])


def test_single_bit_avalanche():
    a = keccak256(b"\x00" * 64)
    b = keccak256(b"\x00" * 63 + b"\x01")
    differing_bits = bin(int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).count("1")
    assert differing_bits > 80  # expect ~128 of 256 bits to flip


def test_no_trivial_collisions_on_prefixes():
    digests = {keccak256(b"msg-%d" % i) for i in range(200)}
    assert len(digests) == 200
