"""Trace analyzer contract: torn tails, unknown schemas, worker clocks."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReportError
from repro.obs.tracing import SPAN_SCHEMA_VERSION, trace_to
from repro.reporting.traces import (
    analyze,
    analyze_file,
    iter_spans,
    percentile,
    read_trace,
)
from repro.sim import preset, run_scenario


def span(span_id, name, start, end, parent=None, **extra):
    record = {
        "v": SPAN_SCHEMA_VERSION,
        "span": span_id,
        "parent": parent,
        "name": name,
        "start": start,
        "end": end,
        "attrs": extra.pop("attrs", {}),
    }
    record.update(extra)
    return record


def write_lines(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            if isinstance(record, str):
                handle.write(record)
            else:
                handle.write(json.dumps(record) + "\n")


# -- reading ---------------------------------------------------------------


def test_empty_file_is_a_valid_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    trace = read_trace(str(path))
    assert len(trace) == 0
    assert not trace.truncated
    structure = analyze(trace).structure()
    assert structure["spans_by_name"] == {}
    assert structure["roots"] == 0
    assert structure["max_depth"] == 0
    assert analyze(trace).critical_path() == []


def test_torn_tail_keeps_the_intact_prefix(tmp_path):
    path = tmp_path / "torn.jsonl"
    write_lines(
        path,
        [
            span(1, "engine.step", 0.0, 1.0),
            span(2, "chain.mine_block", 0.2, 0.4, parent=1),
            '{"v": 1, "span": 3, "name": "chain.mine_bl',  # kill -9 here
        ],
    )
    trace = read_trace(str(path))
    assert len(trace) == 2
    assert trace.truncated
    assert analyze(trace).structure()["truncated"] is True


def test_blank_lines_are_skipped_not_tears(tmp_path):
    path = tmp_path / "blank.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(span(1, "engine.step", 0.0, 1.0)) + "\n")
        handle.write("\n")
        handle.write(json.dumps(span(2, "engine.step", 1.0, 2.0)) + "\n")
    trace = read_trace(str(path))
    assert len(trace) == 2
    assert not trace.truncated


def test_unknown_schema_version_raises(tmp_path):
    path = tmp_path / "future.jsonl"
    write_lines(path, [span(1, "engine.step", 0.0, 1.0, v=999)])
    with pytest.raises(ReportError, match="unknown schema version"):
        read_trace(str(path))


def test_iter_spans_stops_at_first_tear():
    lines = [
        json.dumps(span(1, "a", 0.0, 1.0)),
        "not json at all",
        json.dumps(span(2, "b", 1.0, 2.0)),
    ]
    spans = list(iter_spans(iter(lines)))
    assert [s["span"] for s in spans] == [1]


# -- percentiles -----------------------------------------------------------


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert percentile(values, 50) == 5.0
    assert percentile(values, 90) == 9.0
    assert percentile(values, 99) == 10.0
    assert percentile([42.0], 50) == 42.0


def test_percentile_of_nothing_raises():
    with pytest.raises(ReportError):
        percentile([], 50)


# -- folding ---------------------------------------------------------------


def test_phase_latencies_fold_by_attr(tmp_path):
    path = tmp_path / "phases.jsonl"
    write_lines(
        path,
        [
            span(1, "session.phase", 0.0, 1.0, attrs={"phase": "commit"}),
            span(2, "session.phase", 1.0, 3.0, attrs={"phase": "commit"}),
            span(3, "session.phase", 3.0, 3.5, attrs={"phase": "reveal"}),
        ],
    )
    analysis = analyze_file(str(path))
    assert analysis.by_phase["commit"].count == 2
    assert analysis.by_phase["commit"].maximum == 2.0
    assert analysis.by_phase["reveal"].count == 1
    stats = analysis.by_phase["commit"].to_dict()
    assert stats["mean"] == 1.5
    assert stats["p50"] == 1.0 and stats["p99"] == 2.0


def test_worker_clock_spans_aggregate_per_pid_never_by_name(tmp_path):
    path = tmp_path / "worker.jsonl"
    write_lines(
        path,
        [
            span(1, "pool.job", 0.0, 2.0),
            span(
                2, "pool.job.worker", 100.0, 101.0, parent=1,
                clock="worker", attrs={"pid": 41},
            ),
            span(
                3, "pool.job.worker", 200.0, 200.5, parent=1,
                clock="worker", attrs={"pid": 42},
            ),
        ],
    )
    analysis = analyze_file(str(path))
    assert "pool.job.worker" not in analysis.by_name
    assert analysis.worker_spans == 2
    assert analysis.worker[41].count == 1
    assert analysis.worker[42].total == 0.5
    # Worker-clock spans never ride the (parent-clock) critical path.
    assert [hop["name"] for hop in analysis.critical_path()] == ["pool.job"]


def test_worker_span_with_torn_parent_is_an_orphan(tmp_path):
    path = tmp_path / "orphan.jsonl"
    write_lines(
        path,
        [
            span(1, "engine.step", 0.0, 1.0),
            # The tear ate span 7 (the submit side); the shipped-home
            # worker span survives and is counted, not dropped.
            span(
                2, "pool.job.worker", 50.0, 51.0, parent=7,
                clock="worker", attrs={"pid": 9},
            ),
        ],
    )
    analysis = analyze_file(str(path))
    assert analysis.orphans == [2]
    assert analysis.worker_spans == 1
    structure = analysis.structure()
    assert structure["orphans"] == 1
    assert structure["worker_spans"] == 1


def test_critical_path_descends_into_longest_child(tmp_path):
    path = tmp_path / "tree.jsonl"
    write_lines(
        path,
        [
            span(1, "engine.step", 0.0, 10.0),
            span(2, "session.phase", 0.0, 3.0, parent=1),
            span(3, "session.phase", 3.0, 9.0, parent=1),
            span(4, "chain.mine_block", 3.0, 8.0, parent=3),
            span(5, "short.root", 0.0, 1.0),
        ],
    )
    analysis = analyze_file(str(path))
    assert [hop["span"] for hop in analysis.critical_path()] == [1, 3, 4]
    assert analysis.max_depth() == 3
    assert sorted(analysis.roots) == [1, 5]


def test_utilization_sweep_line(tmp_path):
    path = tmp_path / "pool.jsonl"
    write_lines(
        path,
        [
            span(1, "pool.job", 0.0, 2.0),
            span(2, "pool.job", 1.0, 3.0),
            span(3, "pool.job", 10.0, 11.0),
            span(4, "unrelated", 0.0, 100.0),
        ],
    )
    pool = analyze_file(str(path)).utilization()
    assert pool["spans"] == 3
    assert pool["peak"] == 2
    assert pool["busy_seconds"] == pytest.approx(4.0)
    # 5 span-seconds of work over 4 busy seconds.
    assert pool["mean"] == pytest.approx(1.25)


def test_utilization_of_absent_name_is_zero(tmp_path):
    path = tmp_path / "none.jsonl"
    write_lines(path, [span(1, "engine.step", 0.0, 1.0)])
    assert analyze_file(str(path)).utilization() == {
        "spans": 0, "peak": 0, "busy_seconds": 0.0, "mean": 0.0,
    }


# -- determinism -----------------------------------------------------------


def test_structure_identical_across_two_seeded_runs(tmp_path):
    structures = []
    for run in ("a", "b"):
        trace_path = str(tmp_path / ("run-%s.jsonl" % run))
        with trace_to(trace_path):
            run_scenario(preset("poisson", seed=11, tasks=2))
        analysis = analyze_file(trace_path)
        assert not analysis.truncated
        assert analysis.spans, "seeded run emitted no spans"
        structures.append(analysis.structure())
    assert structures[0] == structures[1]
    assert structures[0]["spans_by_name"].get("engine.step", 0) > 0
