"""Renderer contract: canonical bytes, manifest integrity, bench folding."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ReportError
from repro.reporting.render import (
    _nice_ceiling,
    fold_benches,
    format_number,
    render_bar_svg,
    render_csv,
    render_markdown_table,
    render_reports,
    verify_manifest,
)


def fake_record(cell, params, settled=2, gas=1000):
    return {
        "schema": 1,
        "cell": cell,
        "params": params,
        "grid": "f" * 64,
        "report": {
            "tasks_published": settled,
            "tasks_settled": settled,
            "tasks_cancelled": 0,
            "blocks": 5 * settled,
            "blocks_per_task": 5.0,
            "settled_per_block": 1.0 / 5.0,
            "total_gas": gas,
            "gas_per_settled_task": gas / settled,
            "enrollments": settled * 2,
            "declined_enrollments": 0,
            "dropped_steps": 0,
        },
        "state_root": "ab" * 32,
        "metrics": {"chain_blocks_total": 5 * settled},
        "trace": {"spans_by_name": {"engine.step": 3}},
        "resumed": False,
    }


RECORDS = {
    "budget=100": fake_record("budget=100", {"budget": 100}),
    "budget=120": fake_record("budget=120", {"budget": 120}, gas=1200),
}

SPEC_JSON = '{"name": "fake"}\n'
GRID = "f" * 64


# -- primitives ------------------------------------------------------------


def test_format_number_is_canonical():
    assert format_number(5) == "5"
    assert format_number(5.0) == "5"
    assert format_number(0.1 + 0.2) == "0.30000000000000004"
    assert format_number(True) == "1"
    assert format_number("text") == "text"


def test_csv_quoting():
    text = render_csv(["a", "b"], [['has,comma', 'has"quote'], [1, 2.5]])
    assert text == 'a,b\n"has,comma","has""quote"\n1,2.5\n'


def test_markdown_table_shape():
    text = render_markdown_table(["x"], [[1]], title="T")
    assert text.startswith("## T\n\n| x |\n| --- |\n| 1 |\n")


def test_nice_ceiling_steps():
    assert _nice_ceiling(0) == 1.0
    assert _nice_ceiling(0.7) == 1.0
    assert _nice_ceiling(3) == 5.0
    assert _nice_ceiling(5) == 5.0
    assert _nice_ceiling(7) == 10.0
    assert _nice_ceiling(1700) == 2000.0


def test_bar_svg_is_deterministic_and_escaped():
    one = render_bar_svg("a <b> & c", ["x<1", "y"], [3.0, 0.0])
    two = render_bar_svg("a <b> & c", ["x<1", "y"], [3.0, 0.0])
    assert one == two
    assert "a &lt;b&gt; &amp; c" in one
    assert "x&lt;1" in one
    assert "<script" not in one
    assert one.startswith("<svg ")
    # A zero bar degrades to a rect of zero height, not a broken path.
    assert 'height="0"' in one


def test_bar_svg_length_mismatch_raises():
    with pytest.raises(ReportError):
        render_bar_svg("t", ["a"], [1.0, 2.0])


# -- bench folding ---------------------------------------------------------


def test_fold_benches_rows(tmp_path):
    with open(tmp_path / "bench_a.json", "w", encoding="utf-8") as handle:
        json.dump(
            {
                "schema": 1,
                "bench": "bench_a",
                "smoke": True,
                "params": {"tasks": 2},
                "timings": {"serial": 1.5, "pooled": 0.5},
                "values": {"blocks": 10},
                "host": {"cpu_count": 4},
            },
            handle,
        )
    header, rows = fold_benches(str(tmp_path))
    assert header[:4] == ["bench", "metric", "value", "unit"]
    assert rows == [
        ["bench_a", "pooled", 0.5, "s", '{"tasks": 2}', 4, True],
        ["bench_a", "serial", 1.5, "s", '{"tasks": 2}', 4, True],
        ["bench_a", "blocks", 10, "", '{"tasks": 2}', 4, True],
    ]


def test_fold_benches_missing_dir_is_empty():
    header, rows = fold_benches("/nonexistent/bench/dir")
    assert rows == []
    assert header[0] == "bench"


def test_fold_benches_rejects_garbage(tmp_path):
    (tmp_path / "broken.json").write_text("{not json")
    with pytest.raises(ReportError, match="unreadable"):
        fold_benches(str(tmp_path))
    (tmp_path / "broken.json").write_text('{"other": "shape"}')
    with pytest.raises(ReportError, match="not a bench record"):
        fold_benches(str(tmp_path))


# -- the artifact set ------------------------------------------------------


def write_cells(out_dir):
    cells_dir = os.path.join(out_dir, "cells")
    os.makedirs(cells_dir, exist_ok=True)
    for cell, record in RECORDS.items():
        with open(
            os.path.join(cells_dir, cell + ".json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(record, handle, sort_keys=True)


def test_render_reports_writes_the_full_artifact_set(tmp_path):
    out = str(tmp_path / "reports")
    write_cells(out)
    manifest = render_reports(out, RECORDS, SPEC_JSON, GRID)
    assert manifest["grid"] == GRID
    assert manifest["cells"] == sorted(RECORDS)
    for relpath in (
        "sweep.json",
        "tables/summary.csv",
        "tables/summary.md",
        "tables/metrics.csv",
        "plots/tasks_settled.svg",
        "plots/gas_per_settled_task.svg",
        "cells/budget=100.json",
    ):
        assert relpath in manifest["artifacts"], relpath
        assert os.path.exists(os.path.join(out, relpath))
    with open(os.path.join(out, "tables/summary.csv")) as handle:
        summary = handle.read()
    assert summary.splitlines()[0].startswith("cell,budget,tasks_published")
    # state_root is truncated for the table, never the full digest.
    assert ("ab" * 8) in summary and ("ab" * 32) not in summary


def test_rendering_twice_is_byte_identical(tmp_path):
    digests = []
    for name in ("one", "two"):
        out = str(tmp_path / name)
        write_cells(out)
        manifest = render_reports(out, RECORDS, SPEC_JSON, GRID)
        digests.append(manifest["artifacts"])
    assert digests[0] == digests[1]


def test_verify_manifest_passes_then_catches_drift(tmp_path):
    out = str(tmp_path / "reports")
    write_cells(out)
    render_reports(out, RECORDS, SPEC_JSON, GRID)
    assert verify_manifest(out)["grid"] == GRID

    with open(os.path.join(out, "tables/summary.csv"), "a") as handle:
        handle.write("tampered\n")
    with pytest.raises(ReportError, match="sha256 drift"):
        verify_manifest(out)

    os.remove(os.path.join(out, "tables/summary.csv"))
    with pytest.raises(ReportError, match="missing"):
        verify_manifest(out)


def test_verify_manifest_without_manifest_raises(tmp_path):
    with pytest.raises(ReportError, match="no manifest"):
        verify_manifest(str(tmp_path))


def test_render_reports_requires_records(tmp_path):
    with pytest.raises(ReportError, match="no cell records"):
        render_reports(str(tmp_path), {}, SPEC_JSON, GRID)


def test_render_reports_folds_benches_into_the_manifest(tmp_path):
    out = str(tmp_path / "reports")
    bench_dir = str(tmp_path / "bench")
    os.makedirs(bench_dir)
    with open(os.path.join(bench_dir, "b.json"), "w") as handle:
        json.dump(
            {"bench": "b", "timings": {"t": 1.0}, "params": {}}, handle
        )
    write_cells(out)
    manifest = render_reports(out, RECORDS, SPEC_JSON, GRID,
                              bench_dir=bench_dir)
    assert "tables/benchmarks.csv" in manifest["artifacts"]
    assert "tables/benchmarks.md" in manifest["artifacts"]
    verify_manifest(out)
