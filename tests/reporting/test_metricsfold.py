"""Snapshot portability, diffing, merging, and the deterministic cut."""

from __future__ import annotations

import pytest

from repro.errors import ReportError
from repro.obs.registry import MetricsRegistry
from repro.reporting.metricsfold import (
    deterministic_projection,
    diff_snapshots,
    merge_snapshots,
    read_snapshot,
    snapshot_from_bytes,
    snapshot_from_json,
    snapshot_to_bytes,
    snapshot_to_json,
    write_snapshot,
)


def counter(name, value, labels=None):
    return {
        "name": name,
        "type": "counter",
        "help": name,
        "samples": [{"labels": labels or {}, "value": value}],
    }


def gauge(name, value):
    return {
        "name": name,
        "type": "gauge",
        "help": name,
        "samples": [{"labels": {}, "value": value}],
    }


def histogram(name, buckets, total, total_sum):
    return {
        "name": name,
        "type": "histogram",
        "help": name,
        "samples": [
            {
                "labels": {},
                "buckets": [
                    {"le": le, "count": count} for le, count in buckets
                ],
                "count": total,
                "sum": total_sum,
            }
        ],
    }


# -- canonical IO ----------------------------------------------------------


def test_json_round_trip_preserves_inexact_floats():
    snapshot = [counter("sim_gas_total", 0.1 + 0.2), gauge("up", 1.0)]
    assert snapshot_from_json(snapshot_to_json(snapshot)) == snapshot


def test_codec_round_trip():
    snapshot = [
        counter("chain_blocks_total", 12),
        histogram("engine_step_seconds", [(0.1, 3), ("inf", 5)], 5, 0.42),
    ]
    assert snapshot_from_bytes(snapshot_to_bytes(snapshot)) == snapshot


def test_json_and_codec_agree_on_a_live_registry():
    registry = MetricsRegistry()
    registry.counter("sim_runs_total", "runs").inc(3)
    registry.histogram(
        "sim_step_seconds", "steps", buckets=(0.1, 1.0)
    ).observe(0.05)
    snapshot = registry.collect()
    assert snapshot_from_json(snapshot_to_json(snapshot)) == snapshot
    assert snapshot_from_bytes(snapshot_to_bytes(snapshot)) == snapshot


def test_file_round_trip(tmp_path):
    path = str(tmp_path / "snap.json")
    snapshot = [counter("a_total", 7)]
    write_snapshot(path, snapshot)
    assert read_snapshot(path) == snapshot


def test_unknown_snapshot_schema_raises(tmp_path):
    path = str(tmp_path / "future.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"schema": 99, "families": []}')
    with pytest.raises(ReportError, match="unknown snapshot schema"):
        read_snapshot(path)


def test_malformed_snapshot_raises():
    with pytest.raises(ReportError):
        snapshot_from_json("not json {{{")
    with pytest.raises(ReportError):
        snapshot_to_json([{"name": "x"}])  # no type/samples
    with pytest.raises(ReportError):
        snapshot_from_json('{"schema": 1, "families": [{"name": "x"}]}')


# -- diff / merge ----------------------------------------------------------


def test_diff_isolates_what_happened_between_scrapes():
    before = [counter("sim_runs_total", 10), gauge("rss", 100.0)]
    after = [counter("sim_runs_total", 13), gauge("rss", 250.0)]
    folded = diff_snapshots(before, after)
    by_name = {family["name"]: family for family in folded}
    assert by_name["sim_runs_total"]["samples"][0]["value"] == 3
    # Gauges diff to the after-value: deltas of samplers mean nothing.
    assert by_name["rss"]["samples"][0]["value"] == 250.0


def test_diff_histograms_per_bucket():
    before = [histogram("h", [(0.1, 2), ("inf", 4)], 4, 1.0)]
    after = [histogram("h", [(0.1, 5), ("inf", 9)], 9, 3.5)]
    (family,) = diff_snapshots(before, after)
    sample = family["samples"][0]
    assert [b["count"] for b in sample["buckets"]] == [3, 5]
    assert sample["count"] == 5
    assert sample["sum"] == 2.5


def test_diff_keeps_label_series_separate():
    before = [counter("c", 1, labels={"path": "a"})]
    after = [
        {
            "name": "c",
            "type": "counter",
            "help": "c",
            "samples": [
                {"labels": {"path": "a"}, "value": 4},
                {"labels": {"path": "b"}, "value": 2},
            ],
        }
    ]
    (family,) = diff_snapshots(before, after)
    values = {
        sample["labels"]["path"]: sample["value"]
        for sample in family["samples"]
    }
    assert values == {"a": 3, "b": 2}


def test_merge_adds_counters_and_histograms():
    runs = [
        [counter("c", 2), histogram("h", [(1, 1), ("inf", 2)], 2, 0.3)],
        [counter("c", 5), histogram("h", [(1, 2), ("inf", 3)], 3, 0.6)],
    ]
    merged = merge_snapshots(runs)
    by_name = {family["name"]: family for family in merged}
    assert by_name["c"]["samples"][0]["value"] == 7
    sample = by_name["h"]["samples"][0]
    assert [b["count"] for b in sample["buckets"]] == [3, 5]
    assert sample["count"] == 5
    assert sample["sum"] == pytest.approx(0.9)


def test_merge_of_nothing_is_empty():
    assert merge_snapshots([]) == []


def test_type_clash_raises():
    with pytest.raises(ReportError, match="changed type"):
        diff_snapshots([counter("x", 1)], [gauge("x", 1)])


# -- the deterministic projection ------------------------------------------


def test_projection_keeps_counters_and_histogram_counts_only():
    snapshot = [
        counter("chain_blocks_total", 12.0),
        gauge("process_rss_bytes", 5e6),
        histogram("engine_step_seconds", [(0.1, 3), ("inf", 7)], 7, 1.23),
    ]
    projected = deterministic_projection(snapshot)
    assert projected == {
        "chain_blocks_total": 12,  # integral float folded to int
        "engine_step_seconds": 7,  # total count, never buckets or sum
    }


def test_projection_prefix_filter_and_label_keys():
    snapshot = [
        counter("chain_tx_total", 4, labels={"method": "commit"}),
        counter("crypto_cache_hits_total", 9),
    ]
    projected = deterministic_projection(snapshot, prefixes=("chain_",))
    assert projected == {"chain_tx_total{method=commit}": 4}
