"""Sweep runner contract: grid shape, byte-identity, resume, fan-out."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ReportError
from repro.reporting.sweep import (
    CELL_METRIC_PREFIXES,
    SweepSpec,
    build_scenario,
    cell_id,
    cells,
    grid_hash,
    record_to_json,
    run_cell,
    run_sweep,
    spec_from_json,
    spec_to_json,
)
from repro.sim import preset, run_scenario
from repro.sim.runner import InterruptedRun
from repro.store.codec import state_root

TINY = SweepSpec(
    name="tiny",
    preset="poisson",
    seed=5,
    tasks=2,
    axes=(("budget", (100, 120)), ("accuracy", (0.7, 0.9))),
)


# -- the spec --------------------------------------------------------------


def test_unknown_axis_rejected():
    with pytest.raises(ReportError, match="unknown sweep axis"):
        SweepSpec(name="x", axes=(("gravity", (1,)),))


def test_non_numeric_axis_values_rejected():
    with pytest.raises(ReportError, match="not a number"):
        SweepSpec(name="x", axes=(("budget", ("high",)),))
    with pytest.raises(ReportError, match="not a number"):
        SweepSpec(name="x", axes=(("budget", (True,)),))
    with pytest.raises(ReportError, match="lists no values"):
        SweepSpec(name="x", axes=(("budget", ()),))


def test_axes_normalize_sorted_regardless_of_input_order():
    flipped = SweepSpec(
        name="tiny",
        preset="poisson",
        seed=5,
        tasks=2,
        axes=(("accuracy", (0.7, 0.9)), ("budget", (100, 120))),
    )
    assert flipped.axes == TINY.axes
    assert grid_hash(flipped) == grid_hash(TINY)


def test_spec_json_round_trip_and_stable_hash():
    text = spec_to_json(TINY)
    assert spec_from_json(text) == TINY
    assert grid_hash(spec_from_json(text)) == grid_hash(TINY)
    # The hash covers the grid: any knob change re-keys the manifest.
    assert grid_hash(TINY) != grid_hash(
        SweepSpec(name="tiny", preset="poisson", seed=6, tasks=2,
                  axes=TINY.axes)
    )


def test_unreadable_spec_raises():
    with pytest.raises(ReportError):
        spec_from_json("{broken")
    with pytest.raises(ReportError, match="unknown sweep spec schema"):
        spec_from_json('{"name": "x", "schema": 99}')


# -- the grid --------------------------------------------------------------


def test_cells_are_the_sorted_cartesian_product():
    grid = cells(TINY)
    assert [cell for cell, _ in grid] == [
        "accuracy=0.7__budget=100",
        "accuracy=0.7__budget=120",
        "accuracy=0.9__budget=100",
        "accuracy=0.9__budget=120",
    ]
    assert grid[1][1] == {"accuracy": 0.7, "budget": 120}


def test_axisless_spec_has_one_base_cell():
    assert cells(SweepSpec(name="solo")) == [("base", {})]


def test_cell_id_formats_integral_floats_as_ints():
    assert cell_id({"budget": 120.0, "accuracy": 0.75}) == (
        "accuracy=0.75__budget=120"
    )


def test_build_scenario_applies_every_axis():
    scenario = build_scenario(
        SweepSpec(name="x", preset="poisson", seed=5, tasks=2),
        {
            "budget": 150,
            "audit_threshold": 1,
            "accuracy": 0.8,
            "stragglers": 0.25,
            "dropouts": 0.1,
            "seed": 99,
        },
    )
    assert scenario.task.budget == 150
    assert scenario.task.quality_threshold == 1
    assert scenario.population.accuracy == ("point", 0.8)
    assert scenario.population.straggler_fraction == 0.25
    assert scenario.population.dropout_fraction == 0.1
    assert scenario.seed == 99


# -- running ---------------------------------------------------------------


def test_two_sweeps_produce_byte_identical_records(tmp_path):
    runs = []
    for name in ("one", "two"):
        out = str(tmp_path / name)
        records = run_sweep(TINY, out, work_dir=out + ".work")
        runs.append(
            {cell: record_to_json(r) for cell, r in records.items()}
        )
        # What run_sweep wrote is what it returned.
        for cell, text in runs[-1].items():
            with open(
                os.path.join(out, "cells", cell + ".json"),
                encoding="utf-8",
            ) as handle:
                assert handle.read() == text
    assert runs[0] == runs[1]


def test_cell_record_matches_un_instrumented_run(tmp_path):
    cell, params = cells(TINY)[0]
    record = run_cell(TINY, cell, params, str(tmp_path / "work"))
    # Telemetry only observes: the same scenario run without any of it
    # produces the same report and the same chain state root.
    bare = run_scenario(build_scenario(TINY, params), keep_objects=True)
    assert record["state_root"] == state_root(bare.dragoon.chain).hex()
    assert record["report"] == bare.report.to_dict()
    assert record["resumed"] is False
    assert record["grid"] == grid_hash(TINY)
    # The metric projection stayed inside the deterministic families.
    assert record["metrics"], "cell captured no metrics"
    assert all(
        key.startswith(CELL_METRIC_PREFIXES)
        for key in record["metrics"]
    )
    assert record["trace"]["spans_by_name"], "cell captured no spans"


def test_interrupted_cell_resumes_to_the_same_bytes(tmp_path):
    spec = SweepSpec(
        name="resume",
        preset="poisson",
        seed=5,
        tasks=2,
        axes=(("budget", (100,)),),
        checkpoint_every=2,
    )
    (cell, params), = cells(spec)

    clean = run_cell(spec, cell, params, str(tmp_path / "clean"))
    assert not isinstance(clean, InterruptedRun)

    work = str(tmp_path / "killed")
    first = run_cell(spec, cell, params, work, interrupt_after=3)
    assert isinstance(first, InterruptedRun)
    resumed = run_cell(spec, cell, params, work)
    assert resumed["resumed"] is True
    assert resumed["report"] == clean["report"]
    assert resumed["state_root"] == clean["state_root"]


def test_run_sweep_skips_completed_cells(tmp_path):
    out = str(tmp_path / "out")
    messages = []
    run_sweep(TINY, out, progress=messages.append)
    assert not any("reusing" in message for message in messages)

    messages.clear()
    again = run_sweep(TINY, out, progress=messages.append)
    assert all("reusing" in message for message in messages)
    assert len(messages) == 4
    assert sorted(again) == [cell for cell, _ in cells(TINY)]

    # A record from another grid is stale and re-runs.
    other = SweepSpec(name="tiny", preset="poisson", seed=6, tasks=2,
                      axes=TINY.axes)
    messages.clear()
    run_sweep(other, out, progress=messages.append)
    assert not any("reusing" in message for message in messages)


def test_force_reruns_completed_cells(tmp_path):
    out = str(tmp_path / "out")
    first = run_sweep(TINY, out)
    messages = []
    second = run_sweep(TINY, out, force=True, progress=messages.append)
    assert not any("reusing" in message for message in messages)
    assert {c: record_to_json(r) for c, r in first.items()} == {
        c: record_to_json(r) for c, r in second.items()
    }


@pytest.mark.slow
def test_process_fanout_matches_inline(tmp_path):
    inline = run_sweep(TINY, str(tmp_path / "inline"))
    pooled = run_sweep(TINY, str(tmp_path / "pooled"), procs=2)
    assert {c: record_to_json(r) for c, r in inline.items()} == {
        c: record_to_json(r) for c, r in pooled.items()
    }


def test_inline_sweep_surfaces_interruption(tmp_path):
    spec = SweepSpec(
        name="stop",
        preset="poisson",
        seed=5,
        tasks=2,
        axes=(("budget", (100,)),),
        checkpoint_every=2,
    )
    (cell, params), = cells(spec)
    work = str(tmp_path / "out") + ".work"
    first = run_cell(spec, cell, params, work, interrupt_after=3)
    assert isinstance(first, InterruptedRun)
    # Re-entering through run_sweep resumes the checkpointed cell.
    records = run_sweep(spec, str(tmp_path / "out"), work_dir=work)
    assert records[cell]["resumed"] is True
    with open(
        os.path.join(str(tmp_path / "out"), "cells", cell + ".json"),
        encoding="utf-8",
    ) as handle:
        assert json.load(handle)["resumed"] is True
