"""The ``report`` CLI family end to end, plus the trace-file lifecycle."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.registry import REGISTRY
from repro.reporting.metricsfold import read_snapshot, write_snapshot
from repro.reporting.render import verify_manifest
from repro.reporting.traces import iter_spans

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

SWEEP_FLAGS = [
    "--preset", "poisson", "--seed", "5", "--tasks", "2",
    "--axis", "budget=100,120",
]


def test_report_sweep_end_to_end(tmp_path, capsys):
    out = str(tmp_path / "reports")
    assert main(["report", "sweep"] + SWEEP_FLAGS + ["--out", out]) == 0
    stdout = capsys.readouterr().out
    assert "2 cells" in stdout
    manifest = verify_manifest(out)
    assert manifest["cells"] == ["budget=100", "budget=120"]
    assert os.path.exists(os.path.join(out, "tables", "summary.md"))

    # report render --check agrees with verify_manifest.
    assert main(["report", "render", "--dir", out, "--check"]) == 0

    # Re-rendering from the on-disk cell records changes no bytes.
    before = manifest["artifacts"]
    assert main(["report", "render", "--dir", out]) == 0
    assert verify_manifest(out)["artifacts"] == before


def test_report_sweep_spec_file_and_work_dir(tmp_path, capsys):
    spec_path = str(tmp_path / "spec.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "name": "from-file",
                "preset": "poisson",
                "seed": 5,
                "tasks": 2,
                "axes": {"budget": [100]},
            },
            handle,
        )
    out = str(tmp_path / "out")
    work = str(tmp_path / "scratch")
    assert main(
        ["report", "sweep", "--spec", spec_path, "--out", out,
         "--work-dir", work]
    ) == 0
    capsys.readouterr()
    assert os.path.exists(os.path.join(work, "traces", "budget=100.jsonl"))
    verify_manifest(out)


def test_report_sweep_requires_a_grid(tmp_path):
    with pytest.raises(SystemExit):
        main(["report", "sweep", "--out", str(tmp_path / "x")])
    with pytest.raises(SystemExit):
        main(
            ["report", "sweep", "--axis", "budget=high",
             "--out", str(tmp_path / "x")]
        )


def test_report_trace_renders_tables(tmp_path, capsys):
    trace = str(tmp_path / "run.jsonl")
    assert main(
        ["simulate", "--preset", "poisson", "--seed", "5", "--tasks", "2",
         "--trace", trace]
    ) == 0
    capsys.readouterr()
    analysis_out = str(tmp_path / "analysis.json")
    assert main(["report", "trace", trace, "--out", analysis_out]) == 0
    stdout = capsys.readouterr().out
    assert "Latency by span" in stdout
    assert "engine.step" in stdout
    assert "Critical path" in stdout
    with open(analysis_out, encoding="utf-8") as handle:
        analysis = json.load(handle)
    assert analysis["structure"]["truncated"] is False
    assert analysis["structure"]["spans_by_name"]["engine.step"] > 0


def test_simulate_metrics_out_then_report_metrics(tmp_path, capsys):
    before_path = str(tmp_path / "before.json")
    after_path = str(tmp_path / "after.json")
    write_snapshot(before_path, REGISTRY.collect())
    assert main(
        ["simulate", "--preset", "poisson", "--seed", "5", "--tasks", "2",
         "--metrics-out", after_path]
    ) == 0
    capsys.readouterr()
    assert read_snapshot(after_path)

    diff_path = str(tmp_path / "diff.json")
    assert main(
        ["report", "metrics", before_path, after_path, "--diff",
         "--project", "--prefix", "sim_", "--out", diff_path]
    ) == 0
    with open(diff_path, encoding="utf-8") as handle:
        projected = json.load(handle)
    assert projected
    assert all(key.startswith("sim_") for key in projected)

    # --diff with the wrong arity is a usage error, not a traceback.
    assert main(["report", "metrics", before_path, "--diff"]) == 2


def test_report_metrics_single_snapshot_prints_canonically(
    tmp_path, capsys
):
    path = str(tmp_path / "snap.json")
    write_snapshot(path, REGISTRY.collect())
    assert main(["report", "metrics", path]) == 0
    stdout = capsys.readouterr().out
    payload = json.loads(stdout)
    assert payload["schema"] == 1
    assert isinstance(payload["families"], list)


# -- the trace-file lifecycle ----------------------------------------------


@pytest.mark.slow
def test_sigterm_leaves_a_parseable_trace(tmp_path):
    """A terminated serve/simulate still flushes complete span lines.

    The CLI converts SIGTERM into the KeyboardInterrupt unwind (exit
    130), closing the line-buffered trace sink on the way out — so the
    file ends on a newline and every line parses.  If the run wins the
    race and finishes first, exit 0 with the same file contract.
    """
    trace = str(tmp_path / "killed.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "simulate",
            "--preset", "poisson", "--seed", "5", "--tasks", "8",
            "--trace", trace,
        ],
        cwd=str(REPO_ROOT),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and not (
        os.path.exists(trace) and os.path.getsize(trace) > 0
    ):
        if process.poll() is not None:
            break
        time.sleep(0.05)
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    returncode = process.wait(timeout=60)
    assert returncode in (0, 130), returncode

    assert os.path.exists(trace)
    with open(trace, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    if returncode == 130:
        assert lines, "terminated run flushed nothing"
    # Every line is complete: the analyzer reads the whole file.
    assert len(list(iter_spans(iter(lines)))) == len(
        [line for line in lines if line.strip()]
    )
    if lines:
        assert lines[-1].endswith("\n")
