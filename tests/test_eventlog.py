"""The chain event bus: log records, filters, cursor subscriptions.

Clients of the session engine never see receipts — they watch the log.
These tests pin the observation API the engine is built on: per-block
attribution, filter semantics, cursor isolation, and the fact that an
empty mempool still mines (time passes without traffic).
"""

from __future__ import annotations

import pytest

from repro.chain.chain import Chain
from repro.chain.contract import CallContext, Contract
from repro.chain.eventlog import EventFilter, EventLog, EventRecord
from repro.chain.transactions import Event
from repro.errors import ChainError
from repro.ledger.accounts import Address


class Beeper(Contract):
    """Emits one ``beep`` event per poke."""

    code_size = 100

    def on_deploy(self, ctx: CallContext) -> None:
        self.emit(ctx, "deployed", payload={})

    def poke(self, ctx: CallContext) -> None:
        self.emit(ctx, "beep", payload={"from": ctx.sender})

    def boop(self, ctx: CallContext) -> None:
        self.emit(ctx, "boop", payload={"from": ctx.sender})


def _chain_with_beeper(name: str = "beeper"):
    chain = Chain()
    user = chain.register_account("user", 0)
    contract = Beeper(name)
    chain.deploy(contract, user)
    return chain, user, contract


def test_events_carry_block_numbers():
    chain, user, contract = _chain_with_beeper()
    chain.send(user, "beeper", "poke")
    chain.mine_block()
    records = list(chain.event_log)
    assert [r.event.name for r in records] == ["deployed", "beep"]
    assert records[0].block_number == 0  # the deployment block
    assert records[1].block_number == 1
    assert [r.sequence for r in records] == [0, 1]


def test_events_in_block():
    chain, user, contract = _chain_with_beeper()
    chain.send(user, "beeper", "poke")
    chain.send(user, "beeper", "boop")
    chain.mine_block()
    names = [event.name for event in chain.events_in_block(1)]
    assert names == ["beep", "boop"]
    assert chain.events_in_block(99) == []


def test_subscription_sees_only_new_events():
    chain, user, contract = _chain_with_beeper()
    subscription = chain.subscribe()  # starts at the log's current end
    chain.send(user, "beeper", "poke")
    chain.mine_block()
    first = subscription.poll()
    assert [r.event.name for r in first] == ["beep"]
    assert subscription.poll() == []  # nothing new
    chain.send(user, "beeper", "poke")
    chain.mine_block()
    assert [r.event.name for r in subscription.poll()] == ["beep"]


def test_subscription_from_start_replays_history():
    chain, user, contract = _chain_with_beeper()
    chain.send(user, "beeper", "poke")
    chain.mine_block()
    subscription = chain.subscribe(from_start=True)
    assert [r.event.name for r in subscription.poll()] == ["deployed", "beep"]


def test_two_subscribers_have_independent_cursors():
    chain, user, contract = _chain_with_beeper()
    a = chain.subscribe(from_start=True)
    b = chain.subscribe(from_start=True)
    assert len(a.poll()) == 1  # the deployment event
    chain.send(user, "beeper", "poke")
    chain.mine_block()
    assert [r.event.name for r in a.poll()] == ["beep"]
    assert [r.event.name for r in b.poll()] == ["deployed", "beep"]


def test_filter_by_name_and_contract():
    chain, user, contract = _chain_with_beeper()
    other = Beeper("other")
    chain.deploy(other, user)
    sub = chain.subscribe(
        EventFilter.for_contract("beeper", names={"beep"}), from_start=True
    )
    chain.send(user, "beeper", "poke")
    chain.send(user, "other", "poke")
    chain.send(user, "beeper", "boop")
    chain.mine_block()
    records = sub.poll()
    assert len(records) == 1
    assert records[0].event.contract == contract.address
    assert records[0].event.name == "beep"


def test_filter_by_topic():
    address = Address.from_label("topical")
    log = EventLog()
    log.append(0, Event(address, "x", topics=(b"t1",)))
    log.append(0, Event(address, "x", topics=(b"t2",)))
    records = log.since(0, EventFilter(topic=b"t2"))
    assert len(records) == 1
    assert records[0].event.topics == (b"t2",)


def test_reverted_transaction_emits_nothing():
    chain, user, contract = _chain_with_beeper()
    chain.send(user, "beeper", "no_such_method")
    chain.mine_block()
    assert chain.events_in_block(1) == []


def test_empty_mempool_still_mines_and_advances_time():
    """Time passes without traffic: deadlines can expire on a quiet chain."""
    chain = Chain()
    period_before = chain.clock.period
    block = chain.mine_block()
    assert block.transactions == ()
    assert chain.height == 1
    assert chain.clock.period == period_before + 1
    assert chain.events_in_block(block.number) == []


def test_events_list_view_matches_log():
    chain, user, contract = _chain_with_beeper()
    chain.send(user, "beeper", "poke")
    chain.mine_block()
    assert [e.name for e in chain.events] == [
        r.event.name for r in chain.event_log
    ]


# ---------------------------------------------------------------------------
# Pruning (cursor draining for long simulation runs)
# ---------------------------------------------------------------------------


def test_prune_drops_only_consumed_records():
    chain, user, contract = _chain_with_beeper()
    sub = chain.subscribe(from_start=True)
    chain.send(user, "beeper", "poke")
    chain.mine_block()
    assert len(sub.poll()) == 2  # deployed + beep: cursor at the end
    chain.send(user, "beeper", "boop")
    chain.mine_block()
    # The boop is unconsumed, so it must survive the prune.
    dropped = chain.event_log.prune()
    assert dropped == 2
    assert chain.event_log.pruned == 2
    assert [r.event.name for r in chain.event_log] == ["boop"]
    assert [r.event.name for r in sub.poll()] == ["boop"]


def test_prune_preserves_global_sequence_numbers():
    chain, user, contract = _chain_with_beeper()
    sub = chain.subscribe(from_start=True)
    chain.send(user, "beeper", "poke")
    chain.mine_block()
    sub.poll()
    chain.event_log.prune()
    chain.send(user, "beeper", "boop")
    chain.mine_block()
    (record,) = sub.poll()
    assert record.sequence == 2  # numbering never restarts
    assert len(chain.event_log) == 3  # one past the highest sequence


def test_prune_respects_the_slowest_live_cursor():
    chain, user, contract = _chain_with_beeper()
    fast = chain.subscribe(from_start=True)
    slow = chain.subscribe(from_start=True)
    chain.send(user, "beeper", "poke")
    chain.mine_block()
    fast.poll()
    assert chain.event_log.prune() == 0  # slow still owes 2 records
    assert [r.event.name for r in slow.poll()] == ["deployed", "beep"]
    assert chain.event_log.prune() == 2


def test_prune_through_bound():
    log = EventLog()
    address = Address.from_label("topical")
    for index in range(4):
        log.append(index, Event(address, "e%d" % index))
    assert log.prune(through=2) == 2  # no subscribers: bound decides
    assert [r.event.name for r in log] == ["e2", "e3"]
    # A cursor at the new base reads the retained tail; one *behind*
    # the base has lost records and must hear about it loudly.
    assert [r.event.name for r in log.since(2)] == ["e2", "e3"]
    with pytest.raises(ChainError):
        log.since(0)


def test_dead_subscriptions_do_not_pin_the_log():
    chain, user, contract = _chain_with_beeper()
    sub = chain.subscribe(from_start=True)  # never polled, then dropped
    del sub
    chain.send(user, "beeper", "poke")
    chain.mine_block()
    assert chain.event_log.prune() == 2
    assert list(chain.event_log) == []


def test_session_engine_survives_pruning_between_steps():
    """The engine's own cursor keeps working across pruning — the
    property long open-ended serve runs rely on."""
    from repro.core.requester import RequesterClient
    from repro.core.session import SessionEngine
    from repro.core.worker import WorkerClient
    from tests.helpers import small_task

    engine = SessionEngine()
    requester = RequesterClient(
        "requester", small_task(), engine.chain, engine.swarm
    )
    session = engine.publish_session(requester)
    for index in range(2):
        session.add_worker(
            WorkerClient("w%d" % index, engine.chain, engine.swarm,
                         answers=[0] * 10)
        )
    while not session.finished:
        engine.step()
        engine.chain.event_log.prune()
    assert session.outcome().payments() == {"w0": 50, "w1": 50}
    assert engine.chain.event_log.pruned > 0


def test_paged_cursor_reads_survive_interleaved_pruning():
    """RPC-style paged reads: a reader that pages `since(cursor)` in
    small chunks and lets the log compact behind it sees every record
    exactly once (the server-side loop in repro.rpc pins the same
    semantics over the wire)."""
    log = EventLog()
    address = Address.from_label("pager")
    for index in range(11):
        log.append(index, Event(address, "e%d" % index))
    expected = ["e%d" % index for index in range(11)]

    seen = []
    cursor = 0
    while cursor < len(log):
        chunk = log.since(cursor)[:3]  # one page
        seen.extend(record.event.name for record in chunk)
        cursor = chunk[-1].sequence + 1 if chunk else len(log)
        log.prune(through=cursor)  # compaction chases the reader
        assert log.pruned <= cursor
    assert seen == expected
    # The reader consumed everything, so the log is fully compacted ...
    assert list(log) == []
    # ... and a cursor that fell behind the base raises the same loud
    # error the RPC layer gives — dropped records are *lost*, and
    # silently resuming past the gap would hide that.
    with pytest.raises(ChainError):
        log.since(0)
